(* Benchmark harness.

   Running this executable regenerates every table and figure of the
   paper's evaluation (printed first, so `dune exec bench/main.exe` is the
   one-shot reproduction artifact), then times the underlying simulation
   kernels with Bechamel — one Test.make per table/figure, measuring the
   code that computes it. *)

open Bechamel
open Toolkit

let config = Hnlpu.Config.gpt_oss_120b

(* --- Kernels under test ------------------------------------------------- *)

let bench_figure2 =
  Test.make ~name:"figure2/strawman-economics"
    (Staged.stage (fun () ->
         ignore (Hnlpu.Strawman.estimate config);
         ignore (Hnlpu.Strawman.gpu_economics ())))

let operator_gemv =
  lazy
    (let rng = Hnlpu.Rng.create 20260706 in
     let g = Hnlpu.Gemv.paper_benchmark rng in
     let x = Hnlpu.Gemv.random_activations rng g in
     (g, x))

let bench_figure12_me_build =
  Test.make ~name:"figure12/metal-embedding-build"
    (Staged.stage (fun () ->
         let g, _ = Lazy.force operator_gemv in
         ignore (Hnlpu.Metal_embedding.make g)))

let bench_figure13_me_run =
  let machine =
    lazy
      (let g, _ = Lazy.force operator_gemv in
       Hnlpu.Metal_embedding.make g)
  in
  Test.make ~name:"figure13/metal-embedding-gemv"
    (Staged.stage (fun () ->
         let _, x = Lazy.force operator_gemv in
         ignore (Hnlpu.Metal_embedding.run (Lazy.force machine) x)))

let bench_figure13_ce_run =
  let machine =
    lazy
      (let g, _ = Lazy.force operator_gemv in
       Hnlpu.Cell_embedding.make g)
  in
  Test.make ~name:"figure13/cell-embedding-gemv"
    (Staged.stage (fun () ->
         let _, x = Lazy.force operator_gemv in
         ignore (Hnlpu.Cell_embedding.run (Lazy.force machine) x)))

let bench_figure13_ma_run =
  let machine =
    lazy
      (let g, _ = Lazy.force operator_gemv in
       Hnlpu.Mac_array.make g)
  in
  Test.make ~name:"figure13/mac-array-gemv"
    (Staged.stage (fun () ->
         let _, x = Lazy.force operator_gemv in
         ignore (Hnlpu.Mac_array.run (Lazy.force machine) x)))

let bench_table1 =
  Test.make ~name:"table1/floorplan"
    (Staged.stage (fun () -> ignore (Hnlpu.Floorplan.table1 ())))

let bench_table2 =
  Test.make ~name:"table2/system-comparison"
    (Staged.stage (fun () -> ignore (Hnlpu.Compare.table2 ())))

let bench_figure14 =
  Test.make ~name:"figure14/context-sweep"
    (Staged.stage (fun () -> ignore (Hnlpu.Perf.figure14 config)))

let bench_table3 =
  Test.make ~name:"table3/tco-scenarios"
    (Staged.stage (fun () -> ignore (Hnlpu.Tco.table3 ())))

let bench_table4 =
  Test.make ~name:"table4/model-nre"
    (Staged.stage (fun () -> ignore (Hnlpu.Model_nre.table4 ())))

let bench_table5 =
  Test.make ~name:"table5/cost-breakdown"
    (Staged.stage (fun () -> ignore (Hnlpu.Cost_breakdown.to_table ())))

(* Supporting kernels: the substrates the experiments ride on. *)

let tiny_weights = lazy (Hnlpu.Weights.random (Hnlpu.Rng.create 9) Hnlpu.Config.tiny_hnlpu)

let bench_reference_forward =
  Test.make ~name:"substrate/reference-transformer-token"
    (Staged.stage (fun () ->
         let t = Hnlpu.Transformer.create (Lazy.force tiny_weights) in
         ignore (Hnlpu.Transformer.forward t ~token:3)))

let bench_dataflow_forward =
  Test.make ~name:"substrate/distributed-dataflow-token"
    (Staged.stage (fun () ->
         let d = Hnlpu.Dataflow.create (Lazy.force tiny_weights) in
         ignore (Hnlpu.Dataflow.forward d ~token:3)))

let bench_scheduler =
  Test.make ~name:"substrate/continuous-batching-200req"
    (Staged.stage (fun () ->
         let rng = Hnlpu.Rng.create 5 in
         let reqs =
           Hnlpu.Scheduler.workload rng ~n:200 ~rate_per_s:5000.0 ~mean_prefill:64
             ~mean_decode:32
         in
         ignore (Hnlpu.Scheduler.simulate config reqs)))

let bench_csa =
  let data = lazy (Array.init 1024 (fun i -> (i * 2654435761) land 4095)) in
  Test.make ~name:"substrate/csa-reduce-1024x12b"
    (Staged.stage (fun () -> ignore (Hnlpu.Csa.reduce ~width:12 (Lazy.force data))))

let bench_trace =
  Test.make ~name:"substrate/pipeline-trace-500tok"
    (Staged.stage (fun () -> ignore (Hnlpu.Trace.run ~tokens:500 config)))

let bench_ablation =
  Test.make ~name:"ablation/interconnect-sweep"
    (Staged.stage (fun () -> ignore (Hnlpu.Ablation.interconnect_sweep config)))

let bench_beam =
  Test.make ~name:"substrate/beam-search-4x6"
    (Staged.stage (fun () ->
         let t = Hnlpu.Transformer.create
             (Hnlpu.Weights.random (Hnlpu.Rng.create 21) Hnlpu.Config.tiny) in
         ignore (Hnlpu.Generation.beam_search t ~prompt:[ 1 ] ~beams:4 ~max_new_tokens:6 ())))

let bench_speculative =
  Test.make ~name:"substrate/speculative-decode"
    (Staged.stage (fun () ->
         let target = Hnlpu.Transformer.create
             (Hnlpu.Weights.random (Hnlpu.Rng.create 22) Hnlpu.Config.tiny) in
         let draft = Hnlpu.Transformer.create
             (Hnlpu.Weights.random (Hnlpu.Rng.create 23) Hnlpu.Config.tiny_dense) in
         ignore
           (Hnlpu.Speculative.generate ~target ~draft ~prompt:[ 1 ] ~max_new_tokens:12
              ~lookahead:3 ())))

let bench_compiler =
  Test.make ~name:"substrate/hn-compiler-2880x2"
    (Staged.stage (fun () ->
         let g = Hnlpu.Gemv.random (Hnlpu.Rng.create 24) ~in_features:2880
             ~out_features:2 ~act_bits:8 in
         ignore (Hnlpu.Hn_compiler.compile g)))

let bench_fp4_quantize =
  let data =
    lazy
      (let rng = Hnlpu.Rng.create 11 in
       Array.init 4096 (fun _ -> Hnlpu.Rng.gaussian rng))
  in
  Test.make ~name:"substrate/mxfp4-quantize-4096"
    (Staged.stage (fun () -> ignore (Hnlpu.Blockscale.quantize (Lazy.force data))))

let all_tests =
  Test.make_grouped ~name:"hnlpu" ~fmt:"%s %s"
    [
      bench_figure2;
      bench_figure12_me_build;
      bench_figure13_ma_run;
      bench_figure13_ce_run;
      bench_figure13_me_run;
      bench_table1;
      bench_table2;
      bench_figure14;
      bench_table3;
      bench_table4;
      bench_table5;
      bench_reference_forward;
      bench_dataflow_forward;
      bench_scheduler;
      bench_trace;
      bench_ablation;
      bench_beam;
      bench_speculative;
      bench_compiler;
      bench_csa;
      bench_fp4_quantize;
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances all_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let print_results results =
  let rows = ref [] in
  Hashtbl.iter
    (fun _witness tbl ->
      Hashtbl.iter
        (fun name ols ->
          let time =
            match Analyze.OLS.estimates ols with
            | Some [ e ] -> Hnlpu.Units.seconds (e *. 1e-9)
            | _ -> "n/a"
          in
          let r2 =
            match Analyze.OLS.r_square ols with
            | Some r -> Printf.sprintf "%.4f" r
            | None -> "-"
          in
          rows := (name, time, r2) :: !rows)
        tbl)
    results;
  let t = Hnlpu.Table.create ~headers:[ "Benchmark"; "Time/run"; "R^2" ] in
  List.iter
    (fun (name, time, r2) -> Hnlpu.Table.add_row t [ name; time; r2 ])
    (List.sort compare !rows);
  Hnlpu.Table.print ~title:"Micro-benchmarks (Bechamel, monotonic clock)" t

let print_figures () =
  print_endline "Figure 12 (area vs the MA SRAM baseline)";
  print_string (Hnlpu.Experiments.figure12_chart ());
  print_newline ();
  print_endline "Figure 13 (energy per GEMV, log scale, nJ)";
  print_string (Hnlpu.Experiments.figure13_chart ());
  print_newline ();
  print_endline "Figure 14 (execution-time breakdown per token)";
  print_string (Hnlpu.Experiments.figure14_chart ())

let print_extensions () =
  print_endline "Extension studies (\xc2\xa78 discussion, see EXPERIMENTS.md)";
  let t =
    Hnlpu.Table.create
      ~headers:[ "Study"; "Headline result" ]
  in
  let row a b = Hnlpu.Table.add_row t [ a; b ] in
  let sw = Hnlpu.Ablation.sliding_window_sweep () in
  let sw512 = List.nth sw (List.length sw - 1) in
  row "sliding window @512K"
    (Printf.sprintf "%.2fx decode speedup" sw512.Hnlpu.Ablation.speedup);
  let spec = Hnlpu.Ablation.speculative_sweep config in
  let best =
    List.fold_left
      (fun acc r -> Float.max acc r.Hnlpu.Ablation.spec_speedup)
      0.0 spec
  in
  row "speculative decode (a=0.7)" (Printf.sprintf "up to %.2fx" best);
  (match Hnlpu.Ablation.interconnect_sweep config with
  | [ _; _; _; wafer ] ->
    row "wafer-scale interconnect"
      (Printf.sprintf "%s tokens/s"
         (Hnlpu.Units.group_thousands
            (int_of_float wafer.Hnlpu.Ablation.throughput_tokens_per_s)))
  | _ -> ());
  let e = Hnlpu.Energy.analyze () in
  row "energy per token"
    (Printf.sprintf "%.1f mJ (%.1f tokens/J)" e.Hnlpu.Energy.total_mj_per_token
       e.Hnlpu.Energy.tokens_per_joule);
  let lo, hi = Hnlpu.Tco.tco_dynamic_ratio Hnlpu.Tco.High in
  row "TCO advantage (high volume)" (Printf.sprintf "%.1fx - %.1fx" lo hi);
  row "carbon advantage" (Printf.sprintf "%.0fx" (Hnlpu.Tco.carbon_ratio Hnlpu.Tco.High));
  Hnlpu.Table.print t

let print_signoff () =
  print_endline "Sign-off checks (paper \xc2\xa77.1)";
  let th = Hnlpu.Thermal.analyze () in
  Printf.printf "  thermal: avg %.3f W/mm2, peak %.2f, junction %.1fC -> %s\n"
    th.Hnlpu.Thermal.average_w_per_mm2 th.Hnlpu.Thermal.peak_w_per_mm2
    th.Hnlpu.Thermal.junction_temp_c
    (if th.Hnlpu.Thermal.within_limits then "PASS" else "FAIL");
  let r = Hnlpu.Routing.analyze config in
  Printf.printf "  ME routing: %.1f%% density, R %.0f ohm, C %.2f fF -> %s\n"
    (r.Hnlpu.Routing.utilization *. 100.0) r.Hnlpu.Routing.avg_resistance_ohm
    r.Hnlpu.Routing.avg_capacitance_ff
    (if r.Hnlpu.Routing.congestion_free then "PASS" else "FAIL");
  let t = Hnlpu.Trace.run ~tokens:500 config in
  Printf.printf "  trace: simulated latency %.1f us vs model %.1f us\n"
    (t.Hnlpu.Trace.measured_latency_s *. 1e6)
    (t.Hnlpu.Trace.predicted_latency_s *. 1e6)

(* --- Serving benchmark (BENCH_serving.json) ------------------------------ *)

(* An instrumented continuous-batching run at a near-saturating arrival
   rate: the serving numbers CI tracks over time.  The JSON is written
   with the telemetry layer's strict-JSON combinators so downstream
   parsers never see NaN. *)
let serving_report ?(path = "BENCH_serving.json") () =
  let obs = Hnlpu.Obs.Sink.create () in
  let rng = Hnlpu.Rng.create 7 in
  let reqs =
    Hnlpu.Scheduler.workload rng ~n:2000 ~rate_per_s:20_000.0 ~mean_prefill:128
      ~mean_decode:128
  in
  let r = Hnlpu.Scheduler.simulate ~obs config reqs in
  (* Quantiles come from the scheduler's own sketch-backed telemetry
     histograms (bounded memory, 1/64 relative error) instead of
     re-materializing per-request latency arrays next to them. *)
  let hist name =
    match Hnlpu.Obs.Metrics.histogram (Hnlpu.Obs.Sink.metrics obs) name with
    | Some s -> s
    | None -> failwith ("serving_report: missing histogram " ^ name)
  in
  let ttft = hist "scheduler/ttft_s" in
  let e2e = hist "scheduler/e2e_s" in
  let module J = Hnlpu.Obs.Json in
  let quantiles (s : Hnlpu.Obs.Metrics.summary) =
    J.obj
      [
        ("p50", J.number s.Hnlpu.Obs.Metrics.p50);
        ("p95", J.number s.Hnlpu.Obs.Metrics.p95);
        ("p99", J.number s.Hnlpu.Obs.Metrics.p99);
      ]
  in
  let json =
    J.obj
      [
        ("benchmark", J.string "continuous-batching-serving");
        ("config", J.string config.Hnlpu.Config.name);
        ("requests", J.int (List.length r.Hnlpu.Scheduler.completed_requests));
        ("tokens_processed", J.int r.Hnlpu.Scheduler.tokens_processed);
        ("decode_tokens_out", J.int r.Hnlpu.Scheduler.decode_tokens_out);
        ("throughput_tokens_per_s", J.number r.Hnlpu.Scheduler.throughput_tokens_per_s);
        ("makespan_s", J.number r.Hnlpu.Scheduler.makespan_s);
        ("mean_slot_occupancy", J.number r.Hnlpu.Scheduler.mean_slot_occupancy);
        ("ttft_s", quantiles ttft);
        ("e2e_s", quantiles e2e);
        ("telemetry_events", J.int (Hnlpu.Obs.Sink.recorded obs));
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc json;
      output_char oc '\n');
  Printf.printf
    "Serving benchmark -> %s\n\
    \  throughput %s tokens/s, TTFT p50 %.2f ms / p95 %.2f ms / p99 %.2f ms, \
     occupancy %.1f%%\n"
    path
    (Hnlpu.Units.group_thousands
       (int_of_float r.Hnlpu.Scheduler.throughput_tokens_per_s))
    (ttft.Hnlpu.Obs.Metrics.p50 *. 1e3)
    (ttft.Hnlpu.Obs.Metrics.p95 *. 1e3)
    (ttft.Hnlpu.Obs.Metrics.p99 *. 1e3)
    (r.Hnlpu.Scheduler.mean_slot_occupancy *. 100.0)

(* --- Telemetry memory trajectory (BENCH_obs.json) ------------------------- *)

(* The scaled serving bench behind the bounded-memory telemetry claim:
   the same instrumented continuous-batching run at 2k, 20k and 200k
   requests (100x growth), recording how many heap words the telemetry
   layer retains at each scale.  Sketch-backed counters-only sinks must
   stay flat; the opt-in exact mode (raw-sample retention) is run next
   to them as the contrast.  CI archives the JSON and fails the build if
   the sketch ceiling regresses more than 2x over the committed
   baseline. *)

let obs_scale_counts = [ 2_000; 20_000; 200_000 ]

(* Returns only the sink and scalar aggregates so the per-request result
   list is collectable before live-words is sampled — the trajectory
   should show telemetry retention, not the simulator's own output. *)
let obs_scale_run ~exact n =
  let obs = Hnlpu.Obs.Sink.create ~events:false ~exact_histograms:exact () in
  let rng = Hnlpu.Rng.create 7 in
  let reqs =
    Hnlpu.Scheduler.workload rng ~n ~rate_per_s:20_000.0 ~mean_prefill:128
      ~mean_decode:128
  in
  let r = Hnlpu.Scheduler.simulate ~obs config reqs in
  (obs, r.Hnlpu.Scheduler.throughput_tokens_per_s, r.Hnlpu.Scheduler.makespan_s)

let obs_report ?(path = "BENCH_obs.json") () =
  let module J = Hnlpu.Obs.Json in
  let module M = Hnlpu.Obs.Metrics in
  let rows =
    List.map
      (fun n ->
        let obs, throughput, makespan_s = obs_scale_run ~exact:false n in
        Gc.full_major ();
        let process_live_words = (Gc.stat ()).Gc.live_words in
        let telemetry_words = Hnlpu.Obs.Sink.live_words obs in
        let ttft =
          match M.histogram (Hnlpu.Obs.Sink.metrics obs) "scheduler/ttft_s" with
          | Some s -> s
          | None -> failwith "obs_report: missing scheduler/ttft_s"
        in
        let exact_obs, _, _ = obs_scale_run ~exact:true n in
        let exact_telemetry_words = Hnlpu.Obs.Sink.live_words exact_obs in
        Printf.printf
          "  %7d requests: telemetry %7d words (exact mode %8d), process \
           live %9d words, TTFT p95 %.2f ms\n%!"
          n telemetry_words exact_telemetry_words process_live_words
          (ttft.M.p95 *. 1e3);
        ( telemetry_words,
          J.obj
            [
              ("requests", J.int n);
              ("telemetry_words", J.int telemetry_words);
              ("exact_telemetry_words", J.int exact_telemetry_words);
              ("process_live_words", J.int process_live_words);
              ("throughput_tokens_per_s", J.number throughput);
              ("makespan_s", J.number makespan_s);
              ("ttft_p50_s", J.number ttft.M.p50);
              ("ttft_p95_s", J.number ttft.M.p95);
              ("ttft_p99_s", J.number ttft.M.p99);
              ( "exact_over_sketch",
                J.number
                  (float_of_int exact_telemetry_words
                  /. float_of_int telemetry_words) );
            ] ))
      obs_scale_counts
  in
  let words = List.map fst rows in
  let first_words = List.hd words in
  let last_words = List.nth words (List.length words - 1) in
  let flat_ratio = float_of_int last_words /. float_of_int first_words in
  let json =
    J.obj
      [
        ("benchmark", J.string "telemetry-memory-trajectory");
        ("config", J.string config.Hnlpu.Config.name);
        ("error_bound", J.number Hnlpu.Obs.Sketch.relative_error);
        ("series", J.arr (List.map snd rows));
        ("sketch_words_ceiling", J.int (List.fold_left Stdlib.max 0 words));
        ("flat_ratio_100x", J.number flat_ratio);
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc json;
      output_char oc '\n');
  Printf.printf
    "Telemetry memory trajectory -> %s (sketch words x%.2f over 100x \
     requests)\n"
    path flat_ratio

(* --- Parallel-speedup benchmark (BENCH_par.json) -------------------------- *)

(* Wall-clock of each parallelized sweep at j=1 vs the resolved pool width,
   plus a structural-equality check between the two results (the Par
   determinism guarantee, measured rather than assumed).  Speedup tracks
   the machine's core count: on a single-core runner both timings coincide
   and speedup ~1.0; CI runs this with HNLPU_DOMAINS=4 on 4-vCPU hosts.

   Each sweep returns its wall-clock seconds, the minor-heap words it
   allocated on the calling domain, and a thunk that marshals the result
   on demand: only the sweep itself is timed, and the structural-identity
   check (Marshal + compare) runs in a separately reported phase —
   serializing inside the timed region used to pollute the speedups CI
   tracks.  The allocation figure is meaningful for the serial leg (all
   work runs on the calling domain); for the parallel leg the workers'
   allocations land on their own domains and are not counted, which is
   why only [serial_alloc_words] is reported. *)

let par_sweeps :
    (string * int * (int -> float * float * (unit -> string))) list =
  let timed f domains =
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    let v = f domains in
    let dt = Unix.gettimeofday () -. t0 in
    let words =
      (Gc.allocated_bytes () -. a0) /. float_of_int (Sys.word_size / 8)
    in
    (dt, words, fun () -> Marshal.to_string v [])
  in
  let rates = List.init 10 (fun i -> 2_000.0 +. (2_000.0 *. float_of_int i)) in
  [
    ( "slo/rate-sweep",
      List.length rates,
      timed (fun domains ->
          Hnlpu.Slo.sweep ~domains config Hnlpu.Slo.interactive ~rates) );
    ( "ablation/slack-mc",
      6,
      timed (fun domains ->
          Hnlpu.Ablation.slack_sweep (Hnlpu.Rng.create 42) ~domains
            ~trials:400 ()) );
    ( "model/quant-eval",
      8,
      timed (fun domains ->
          Hnlpu.Quant_eval.evaluate ~domains (Hnlpu.Rng.create 7)
            Hnlpu.Config.tiny_hnlpu) );
    ( "baseline/gpu-scaling",
      6,
      timed (fun domains -> Hnlpu.Scaling.sweep ~domains ()) );
    ( "tco/tornado",
      7,
      timed (fun domains -> Hnlpu.Sensitivity.tornado ~domains ()) );
    ( "experiments/tables",
      9,
      timed (fun domains -> Hnlpu.Experiments.all ~domains ()) );
  ]

let par_report ?(path = "BENCH_par.json") () =
  let domains = Hnlpu.Par.default_domains () in
  let module J = Hnlpu.Obs.Json in
  (* Warm the shared pool before any timed row: domain spawn (and the
     workers' first minor-heap growth) would otherwise all land in the
     first parallel measurement. *)
  let warm_pool = Hnlpu.Par.shared ~domains () in
  Hnlpu.Par.run_tasks warm_pool ~tasks:(2 * domains) (fun _ -> ());
  let rows =
    List.map
      (fun (name, points, run) ->
        let serial_s, serial_alloc_words, serial = run 1 in
        let parallel_s, _, parallel = run domains in
        let check0 = Unix.gettimeofday () in
        let identical = String.equal (serial ()) (parallel ()) in
        let check_s = Unix.gettimeofday () -. check0 in
        let speedup = if parallel_s > 0.0 then serial_s /. parallel_s else 1.0 in
        let words_per_point = serial_alloc_words /. float_of_int points in
        Printf.printf
          "  %-22s %2d points: serial %.3f s, j=%d %.3f s, speedup %.2fx \
           (check %.3f s, %.2g w/pt)%s\n"
          name points serial_s domains parallel_s speedup check_s
          words_per_point
          (if identical then "" else "  [MISMATCH]");
        J.obj
          [
            ("name", J.string name);
            ("points", J.int points);
            ("serial_s", J.number serial_s);
            ("parallel_s", J.number parallel_s);
            ("speedup", J.number speedup);
            ("check_s", J.number check_s);
            ("serial_alloc_words", J.number serial_alloc_words);
            ("words_per_point", J.number words_per_point);
            ("identical", J.bool identical);
          ])
      par_sweeps
  in
  let json =
    J.obj
      [
        ("benchmark", J.string "domain-parallel-sweeps");
        ("config", J.string config.Hnlpu.Config.name);
        ("domains", J.int domains);
        ("sweeps", J.arr rows);
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc json;
      output_char oc '\n');
  Printf.printf "Parallel benchmark -> %s (pool width %d)\n" path domains

(* --- Fleet benchmark (BENCH_fleet.json) ----------------------------------- *)

(* The fleet simulator's acceptance surface, measured: a 2,000-node,
   10^6-request least-loaded run at j=1 and at the resolved pool width
   (the two results must Marshal byte-identically — the sharded
   determinism guarantee), allocation per request on the serial leg
   (the ALLOC-HOT budget; worker-domain allocations are invisible to
   Gc.allocated_bytes, so only j=1 is meaningful), telemetry retention
   at 10^5 vs 10^6 requests (the flat-memory claim), and a policy x
   fleet-size grid under a fail/recover schedule.  CI archives the JSON
   and fails the build on an identity mismatch, a flatness ratio above
   1.5x, or words/request above 2x the committed baseline. *)

let fleet_sim_spec cfg =
  (* Chat traffic offered at 85% of the fleet's fluid capacity: loaded
     enough that routing quality shows up in the TTFT tail, below the
     instability knee so makespan tracks the trace length. *)
  let s = Hnlpu.Arrivals.chat ~rate_per_s:1.0 in
  Hnlpu.Arrivals.with_mean_rate s
    (0.85 *. Hnlpu.Fleet.capacity_req_per_s cfg s)

let fleet_timed ?domains ?obs ?node_events ~policy ~requests cfg spec =
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  let r =
    Hnlpu.Fleet.run ?domains ?obs ?node_events ~policy ~requests ~seed:7 cfg
      spec
  in
  let dt = Unix.gettimeofday () -. t0 in
  let words =
    (Gc.allocated_bytes () -. a0) /. float_of_int (Sys.word_size / 8)
  in
  (r, dt, words)

let fleet_report ?(path = "BENCH_fleet.json") () =
  let module J = Hnlpu.Obs.Json in
  let domains = Hnlpu.Par.default_domains () in
  let nodes = 2_000 and requests = 1_000_000 in
  let cfg = Hnlpu.Fleet.config_of_model ~nodes config in
  let spec = fleet_sim_spec cfg in
  let ll = Hnlpu.Fleet.Least_loaded in
  let r1, serial_s, serial_words =
    fleet_timed ~domains:1 ~policy:ll ~requests cfg spec
  in
  let rj, parallel_s, _ = fleet_timed ~domains ~policy:ll ~requests cfg spec in
  let identical =
    String.equal (Marshal.to_string r1 []) (Marshal.to_string rj [])
  in
  let words_per_request = serial_words /. float_of_int requests in
  let ttft_p50 = Hnlpu.Obs.Sketch.quantile r1.Hnlpu.Fleet.ttft 0.5 in
  let ttft_p99 = Hnlpu.Obs.Sketch.quantile r1.Hnlpu.Fleet.ttft 0.99 in
  Printf.printf
    "  headline: %d nodes, %dk requests (ll): serial %.2f s, j=%d %.2f s \
     (%.2fM req/s), %.1f words/request, TTFT p50 %.2f ms p99 %.2f ms%s\n%!"
    nodes (requests / 1000) serial_s domains parallel_s
    (float_of_int requests /. parallel_s /. 1e6)
    words_per_request (ttft_p50 *. 1e3) (ttft_p99 *. 1e3)
    (if identical then "" else "  [MISMATCH]");
  (* Telemetry retention on an instrumented run must not grow with the
     trace: counters-only sinks + fixed-bucket sketches. *)
  let telemetry_words n =
    let obs = Hnlpu.Obs.Sink.create ~events:false () in
    let _, _, _ = fleet_timed ~obs ~policy:ll ~requests:n cfg spec in
    Hnlpu.Obs.Sink.live_words obs
  in
  let words_1e5 = telemetry_words 100_000 in
  let words_1e6 = telemetry_words 1_000_000 in
  let flat_ratio = float_of_int words_1e6 /. float_of_int words_1e5 in
  Printf.printf
    "  telemetry: %d words at 100k requests, %d at 1M (x%.2f over 10x)\n%!"
    words_1e5 words_1e6 flat_ratio;
  (* Policy x fleet-size grid, 10%% of nodes failing a quarter into the
     trace and recovering a quarter later.  Serial legs so words/request
     stays measurable. *)
  let grid_requests = 100_000 in
  let grid_rows =
    List.concat_map
      (fun gn ->
        let cfg = Hnlpu.Fleet.config_of_model ~nodes:gn config in
        let spec = fleet_sim_spec cfg in
        let quarter =
          float_of_int grid_requests
          /. Hnlpu.Arrivals.mean_rate_per_s spec /. 4.0
        in
        let events =
          Hnlpu.Fleet.fail_recover_schedule ~nodes:gn ~fraction:0.1
            ~at_s:quarter ~recover_after_s:quarter
        in
        List.map
          (fun policy ->
            let r, dt, words =
              fleet_timed ~domains:1 ~node_events:events ~policy
                ~requests:grid_requests cfg spec
            in
            let wpr = words /. float_of_int grid_requests in
            let p50 = Hnlpu.Obs.Sketch.quantile r.Hnlpu.Fleet.ttft 0.5 in
            let p99 = Hnlpu.Obs.Sketch.quantile r.Hnlpu.Fleet.ttft 0.99 in
            Printf.printf
              "  %4d nodes %-2s: %.2fM req/s sim, %.1f w/req, imbalance \
               %.2fx, TTFT p50 %.2f ms p99 %.2f ms\n%!"
              gn
              (Hnlpu.Fleet.policy_name policy)
              (float_of_int grid_requests /. dt /. 1e6)
              wpr r.Hnlpu.Fleet.imbalance (p50 *. 1e3) (p99 *. 1e3);
            J.obj
              [
                ("nodes", J.int gn);
                ("policy", J.string (Hnlpu.Fleet.policy_name policy));
                ("requests", J.int grid_requests);
                ( "sim_requests_per_s",
                  J.number (float_of_int grid_requests /. dt) );
                ("words_per_request", J.number wpr);
                ("imbalance", J.number r.Hnlpu.Fleet.imbalance);
                ("ttft_p50_s", J.number p50);
                ("ttft_p99_s", J.number p99);
                ( "e2e_p99_s",
                  J.number (Hnlpu.Obs.Sketch.quantile r.Hnlpu.Fleet.e2e 0.99)
                );
                ("dropped", J.int r.Hnlpu.Fleet.dropped);
                ( "redispatched_tokens",
                  J.number r.Hnlpu.Fleet.redispatched_tokens );
              ])
          [
            Hnlpu.Fleet.Round_robin;
            Hnlpu.Fleet.Least_loaded;
            Hnlpu.Fleet.Session_affinity;
            Hnlpu.Fleet.Power_aware;
          ])
      [ 500; 1_000; 2_000 ]
  in
  let json =
    J.obj
      [
        ("benchmark", J.string "fleet-scale-serving");
        ("config", J.string config.Hnlpu.Config.name);
        ( "headline",
          J.obj
            [
              ("nodes", J.int nodes);
              ("shards", J.int cfg.Hnlpu.Fleet.shards);
              ("requests", J.int requests);
              ("policy", J.string "ll");
              ("domains", J.int domains);
              ("serial_s", J.number serial_s);
              ("parallel_s", J.number parallel_s);
              ( "sim_requests_per_s",
                J.number (float_of_int requests /. parallel_s) );
              ("words_per_request", J.number words_per_request);
              ("identical", J.bool identical);
              ( "throughput_tokens_per_s",
                J.number r1.Hnlpu.Fleet.throughput_tokens_per_s );
              ("imbalance", J.number r1.Hnlpu.Fleet.imbalance);
              ("ttft_p50_s", J.number ttft_p50);
              ("ttft_p99_s", J.number ttft_p99);
              ("dispatched", J.int r1.Hnlpu.Fleet.dispatched);
              ("dropped", J.int r1.Hnlpu.Fleet.dropped);
            ] );
        ( "telemetry",
          J.obj
            [
              ("words_100k", J.int words_1e5);
              ("words_1m", J.int words_1e6);
              ("flat_ratio_10x", J.number flat_ratio);
            ] );
        ("grid", J.arr grid_rows);
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc json;
      output_char oc '\n');
  Printf.printf "Fleet benchmark -> %s (pool width %d)\n" path domains

let () =
  if Array.exists (( = ) "--serving-only") Sys.argv then begin
    serving_report ();
    exit 0
  end;
  if Array.exists (( = ) "--fleet") Sys.argv then begin
    print_endline
      "Fleet-scale serving benchmark (2,000 nodes, 10^6-request traces)";
    fleet_report ();
    exit 0
  end;
  if Array.exists (( = ) "--obs-scale") Sys.argv then begin
    print_endline "Telemetry memory trajectory (2k -> 200k requests)";
    obs_report ();
    exit 0
  end;
  if Array.exists (( = ) "--par") Sys.argv then begin
    print_endline "Parallel-sweep benchmark (serial vs domain pool)";
    par_report ();
    exit 0
  end;
  print_endline "HNLPU reproduction — paper tables and figures";
  print_endline "=============================================";
  print_newline ();
  print_string (Hnlpu.Experiments.render_all ());
  print_newline ();
  print_figures ();
  print_newline ();
  print_signoff ();
  print_newline ();
  serving_report ();
  print_newline ();
  print_extensions ();
  print_newline ();
  print_results (benchmark ())
