open Hnlpu_system
open Hnlpu_util

let config = Hnlpu_model.Config.gpt_oss_120b

(* --- Mapping ----------------------------------------------------------------- *)

let test_mapping_gpt_oss_slices () =
  Mapping.check_mappable config;
  let s = Mapping.wq_slice config ~chip:0 in
  Alcotest.(check int) "Wq rows 720" 720 s.Mapping.row_len;
  Alcotest.(check int) "Wq cols 1024" 1024 s.Mapping.col_len;
  let k = Mapping.wk_slice config ~chip:5 in
  Alcotest.(check int) "Wk cols 128" 128 k.Mapping.col_len;
  Alcotest.(check int) "Wk row offset (row 1)" 720 k.Mapping.row_lo;
  let o = Mapping.wo_slice config ~chip:6 in
  (* chip 6 = row 1, col 2: Wo rows from column, cols from row. *)
  Alcotest.(check int) "Wo row_lo = col*1024" 2048 o.Mapping.row_lo;
  Alcotest.(check int) "Wo col_lo = row*720" 720 o.Mapping.col_lo

let test_mapping_experts () =
  (* gpt-oss: 128 experts -> 8 per chip (§4.2). *)
  List.iter
    (fun chip ->
      Alcotest.(check int) "8 experts" 8
        (List.length (Mapping.experts_of_chip config ~chip)))
    Hnlpu_noc.Topology.all_chips;
  Alcotest.(check int) "expert 17 on chip 1" 1 (Mapping.chip_of_expert config ~expert:17)

let test_mapping_balance () =
  (* The paper's balance claim: every chip hardwires the same share. *)
  let w0 = Mapping.weights_per_chip_per_layer config ~chip:0 in
  List.iter
    (fun chip ->
      Alcotest.(check int) "balanced" w0
        (Mapping.weights_per_chip_per_layer config ~chip))
    Hnlpu_noc.Topology.all_chips

let test_mapping_covers_everything () =
  (* Per-chip weights x 16 = all layer weights + 15 extra router copies. *)
  let per_chip = Mapping.weights_per_chip_per_layer config ~chip:0 in
  let total = 16 * per_chip in
  let expected =
    Hnlpu_model.Params.attention_per_layer config
    + Hnlpu_model.Params.moe_per_layer config
    + (15 * Hnlpu_model.Params.router_per_layer config)
  in
  Alcotest.(check int) "coverage" expected total

let test_mapping_rejects_unmappable () =
  Alcotest.(check bool) "tiny (kv_heads=2) not mappable" true
    (try
       Mapping.check_mappable Hnlpu_model.Config.tiny;
       false
     with Invalid_argument _ -> true)

(* --- Dataflow: distributed = reference ----------------------------------------- *)

let tiny = Hnlpu_model.Config.tiny_hnlpu

let test_dataflow_matches_reference () =
  let w = Hnlpu_model.Weights.random (Rng.create 77) tiny in
  let reference = Hnlpu_model.Transformer.create w in
  let distributed = Dataflow.create w in
  let prompt = [ 3; 14; 15; 9; 2; 6 ] in
  List.iter
    (fun tok ->
      let lr = Hnlpu_model.Transformer.forward reference ~token:tok in
      let ld = Dataflow.forward distributed ~token:tok in
      let scale = Hnlpu_tensor.Vec.norm2 lr /. sqrt (float_of_int (Array.length lr)) in
      let err = Hnlpu_tensor.Vec.max_abs_diff lr ld /. Float.max scale 1e-12 in
      Alcotest.(check bool)
        (Printf.sprintf "token %d err %.2e" tok err)
        true (err < 1e-4))
    prompt

let prop_dataflow_equivalence =
  QCheck.Test.make ~name:"16-chip dataflow = reference transformer" ~count:8
    QCheck.(pair (int_range 0 100000) (list_of_size (Gen.int_range 1 5) (int_range 0 63)))
    (fun (seed, prompt) ->
      let w = Hnlpu_model.Weights.random (Rng.create seed) tiny in
      let reference = Hnlpu_model.Transformer.create w in
      let distributed = Dataflow.create w in
      List.for_all
        (fun tok ->
          let lr = Hnlpu_model.Transformer.forward reference ~token:tok in
          let ld = Dataflow.forward distributed ~token:tok in
          let scale =
            Hnlpu_tensor.Vec.norm2 lr /. sqrt (float_of_int (Array.length lr))
          in
          Hnlpu_tensor.Vec.max_abs_diff lr ld /. Float.max scale 1e-12 < 1e-4)
        prompt)

let test_dataflow_kv_striping () =
  let w = Hnlpu_model.Weights.random (Rng.create 78) tiny in
  let d = Dataflow.create w in
  for tok = 0 to 7 do
    ignore (Dataflow.forward d ~token:(tok mod 64))
  done;
  (* 8 positions striped mod 4: every chip holds exactly 2. *)
  List.iter
    (fun chip ->
      Alcotest.(check int) "2 positions per chip" 2
        (Dataflow.kv_positions_on_chip d ~chip ~layer:0))
    Hnlpu_noc.Topology.all_chips

let test_dataflow_collective_pattern () =
  let w = Hnlpu_model.Weights.random (Rng.create 79) tiny in
  let d = Dataflow.create w in
  ignore (Dataflow.forward d ~token:1);
  let c = Dataflow.collectives d in
  let layers = tiny.Hnlpu_model.Config.num_layers in
  (* Per layer: 4 columns x (Q, K, V) + 4 columns x attention-stats x
     q-heads-per-col... at least the QKV reduces; exactly one all-chip
     all-reduce (MoE) and one gather; 4 row all-reduces. *)
  Alcotest.(check int) "one MoE all-reduce per layer" layers c.Dataflow.all_chip_all_reduce;
  Alcotest.(check int) "one gather per layer" layers c.Dataflow.col_all_gather;
  Alcotest.(check int) "four row all-reduces per layer" (4 * layers)
    c.Dataflow.row_all_reduce;
  Alcotest.(check bool) "column collectives happen" true (c.Dataflow.col_all_reduce > 0)

(* --- Perf: Table 2 / Figure 14 --------------------------------------------------- *)

let test_throughput_paper_point () =
  (* Table 2: 249,960 tokens/s at 2K context. *)
  let tp = Perf.throughput_tokens_per_s config ~context:2048 in
  Alcotest.(check bool) (Printf.sprintf "throughput %.0f" tp) true
    (Approx.within_pct 1.0 ~expected:249_960.0 ~actual:tp)

let test_pipeline_slots () =
  Alcotest.(check int) "216" 216 (Perf.pipeline_slots config)

let test_token_latency_magnitude () =
  (* 216 slots / 249,960 tok/s = 864 us. *)
  let l = Perf.token_latency_s config ~context:2048 in
  Alcotest.(check bool) (Printf.sprintf "latency %.1f us" (l *. 1e6)) true
    (Approx.within_pct 1.0 ~expected:864.1e-6 ~actual:l)

let paper_figure14 =
  (* context, comm%, projection%, attention%, stall% (non-linear is the
     remainder). *)
  [
    (2048, 82.9, 13.8, 0.55, 0.0);
    (8192, 81.5, 13.6, 2.2, 0.0);
    (65536, 70.8, 11.8, 15.1, 0.0);
    (131072, 61.5, 10.2, 26.2, 0.0);
    (262144, 48.7, 8.1, 41.6, 0.0);
    (524288, 30.7, 5.1, 52.4, 10.7);
  ]

let test_figure14_within_tolerance () =
  (* Each share within 3 percentage points of the paper's column. *)
  List.iter
    (fun (context, comm, proj, attn, stall) ->
      let f = Perf.fractions (Perf.token_breakdown config ~context) in
      let check name expected actual =
        Alcotest.(check bool)
          (Printf.sprintf "%dK %s: %.1f%% vs paper %.1f%%" (context / 1024) name
             (actual *. 100.0) expected)
          true
          (Float.abs ((actual *. 100.0) -. expected) <= 3.0)
      in
      check "comm" comm f.Perf.comm_s;
      check "projection" proj f.Perf.projection_s;
      check "attention" attn f.Perf.attention_s;
      check "stall" stall f.Perf.stall_s)
    paper_figure14

let test_figure14_trends () =
  (* The qualitative claims of §7.4. *)
  let frac context = Perf.fractions (Perf.token_breakdown config ~context) in
  let f2k = frac 2048 and f512k = frac 524288 in
  Alcotest.(check bool) "comm dominates at short context" true (f2k.Perf.comm_s > 0.7);
  Alcotest.(check bool) "attention dominates at long context" true
    (f512k.Perf.attention_s > f512k.Perf.comm_s);
  Alcotest.(check bool) "stalls negligible up to 256K" true
    ((frac 262144).Perf.stall_s < 0.02);
  Alcotest.(check bool) "stalls visible at 512K" true (f512k.Perf.stall_s > 0.05)

let test_latency_monotone_in_context () =
  let l c = Perf.token_latency_s config ~context:c in
  Alcotest.(check bool) "monotone" true (l 2048 < l 65536 && l 65536 < l 524288)

(* --- Scheduler --------------------------------------------------------------- *)

let test_scheduler_conservation () =
  let rng = Rng.create 99 in
  let reqs = Scheduler.workload rng ~n:40 ~rate_per_s:2000.0 ~mean_prefill:30 ~mean_decode:20 in
  let r = Scheduler.simulate config reqs in
  Alcotest.(check int) "all requests complete" 40 (List.length r.Scheduler.completed_requests);
  let expected_tokens =
    List.fold_left (fun a q -> a + q.Scheduler.prefill_tokens + q.Scheduler.decode_tokens) 0 reqs
  in
  Alcotest.(check int) "token conservation" expected_tokens r.Scheduler.tokens_processed;
  let expected_decode =
    List.fold_left (fun a q -> a + q.Scheduler.decode_tokens) 0 reqs
  in
  Alcotest.(check int) "decode conservation" expected_decode r.Scheduler.decode_tokens_out

let test_scheduler_ordering_invariants () =
  let rng = Rng.create 100 in
  let reqs = Scheduler.workload rng ~n:20 ~rate_per_s:500.0 ~mean_prefill:10 ~mean_decode:10 in
  let r = Scheduler.simulate config reqs in
  List.iter
    (fun c ->
      Alcotest.(check bool) "first token after arrival" true
        (c.Scheduler.first_token_s > c.Scheduler.request.Scheduler.arrival_s);
      Alcotest.(check bool) "finish after first token" true
        (c.Scheduler.finish_s >= c.Scheduler.first_token_s);
      Alcotest.(check bool) "queue wait nonnegative" true (c.Scheduler.queue_wait_s >= -1e-12))
    r.Scheduler.completed_requests

let test_scheduler_fifo_order () =
  (* Regression: a stalled injection used to pop the queue head and re-push
     it to the back, rotating FIFO order whenever the initiation interval
     delayed admission.  With identical work, first tokens must complete in
     arrival order. *)
  let reqs =
    List.init 300 (fun i ->
        {
          Scheduler.arrival_s = 1e-9 *. float_of_int i;
          prefill_tokens = 1;
          decode_tokens = 5;
        })
  in
  let r = Scheduler.simulate config reqs in
  let by_arrival =
    List.sort
      (fun a b ->
        compare a.Scheduler.request.Scheduler.arrival_s
          b.Scheduler.request.Scheduler.arrival_s)
      r.Scheduler.completed_requests
  in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) ->
      a.Scheduler.first_token_s <= b.Scheduler.first_token_s +. 1e-12
      && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check int) "all complete" 300 (List.length by_arrival);
  Alcotest.(check bool) "first tokens in arrival order" true
    (nondecreasing by_arrival)

let test_scheduler_saturation () =
  (* A heavy closed workload must approach the pipeline bound. *)
  let rng = Rng.create 101 in
  let reqs =
    Scheduler.workload rng ~n:400 ~rate_per_s:1.0e9 ~mean_prefill:200 ~mean_decode:2
  in
  let r = Scheduler.simulate config reqs in
  let bound = Scheduler.saturated_throughput config in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.0f vs bound %.0f" r.Scheduler.throughput_tokens_per_s bound)
    true
    (r.Scheduler.throughput_tokens_per_s > 0.8 *. bound
    && r.Scheduler.throughput_tokens_per_s <= bound *. 1.001);
  Alcotest.(check bool) "high occupancy" true (r.Scheduler.mean_slot_occupancy > 0.7)

let test_scheduler_decode_rate_single_stream () =
  (* One lonely sequence decodes at 1 token per token-latency. *)
  let reqs = [ { Scheduler.arrival_s = 0.0; prefill_tokens = 1; decode_tokens = 50 } ] in
  let r = Scheduler.simulate config reqs in
  let latency = Perf.token_latency_s config ~context:2048 in
  let expected = 51.0 *. latency in
  Alcotest.(check bool)
    (Printf.sprintf "makespan %.1f ms" (r.Scheduler.makespan_s *. 1e3))
    true
    (Approx.within_pct 2.0 ~expected ~actual:r.Scheduler.makespan_s)

let test_scheduler_context_aware_slower () =
  (* Long sequences decode slower when latency tracks the KV length. *)
  let reqs =
    List.init 20 (fun i ->
        { Scheduler.arrival_s = 0.001 *. float_of_int i;
          prefill_tokens = 40_000; decode_tokens = 50 })
  in
  let flat = Scheduler.simulate ~context:2048 config reqs in
  let aware = Scheduler.simulate ~context_aware:true config reqs in
  Alcotest.(check bool) "aware is slower" true
    (aware.Scheduler.makespan_s > flat.Scheduler.makespan_s);
  Alcotest.(check int) "same tokens" flat.Scheduler.tokens_processed
    aware.Scheduler.tokens_processed

let test_scheduler_context_aware_matches_flat_when_short () =
  (* Below the 2K bucket both models agree exactly. *)
  let reqs =
    [ { Scheduler.arrival_s = 0.0; prefill_tokens = 100; decode_tokens = 100 } ]
  in
  let flat = Scheduler.simulate ~context:2048 config reqs in
  let aware = Scheduler.simulate ~context_aware:true config reqs in
  Alcotest.(check (float 1e-9)) "identical makespan" flat.Scheduler.makespan_s
    aware.Scheduler.makespan_s

let test_scheduler_empty_edge () =
  let r = Scheduler.simulate config [] in
  Alcotest.(check int) "nothing" 0 r.Scheduler.tokens_processed

let prop_scheduler_conserves =
  QCheck.Test.make ~name:"scheduler conserves tokens" ~count:15
    QCheck.(triple (int_range 1 30) (int_range 1 60) (int_range 0 100000))
    (fun (n, mean, seed) ->
      let rng = Rng.create seed in
      let reqs =
        Scheduler.workload rng ~n ~rate_per_s:10_000.0 ~mean_prefill:mean ~mean_decode:5
      in
      let r = Scheduler.simulate config reqs in
      let expected =
        List.fold_left
          (fun a q -> a + q.Scheduler.prefill_tokens + q.Scheduler.decode_tokens)
          0 reqs
      in
      r.Scheduler.tokens_processed = expected
      && List.length r.Scheduler.completed_requests = n)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hnlpu_system"
    [
      ( "mapping",
        [
          Alcotest.test_case "gpt-oss slices" `Quick test_mapping_gpt_oss_slices;
          Alcotest.test_case "experts" `Quick test_mapping_experts;
          Alcotest.test_case "balance" `Quick test_mapping_balance;
          Alcotest.test_case "coverage" `Quick test_mapping_covers_everything;
          Alcotest.test_case "rejects unmappable" `Quick test_mapping_rejects_unmappable;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "matches reference" `Quick test_dataflow_matches_reference;
          Alcotest.test_case "kv striping" `Quick test_dataflow_kv_striping;
          Alcotest.test_case "collective pattern" `Quick test_dataflow_collective_pattern;
        ] );
      qsuite "dataflow properties" [ prop_dataflow_equivalence ];
      ( "perf",
        [
          Alcotest.test_case "throughput 249,960" `Quick test_throughput_paper_point;
          Alcotest.test_case "216 slots" `Quick test_pipeline_slots;
          Alcotest.test_case "latency 864us" `Quick test_token_latency_magnitude;
          Alcotest.test_case "figure 14 within 3pp" `Quick test_figure14_within_tolerance;
          Alcotest.test_case "figure 14 trends" `Quick test_figure14_trends;
          Alcotest.test_case "latency monotone" `Quick test_latency_monotone_in_context;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "conservation" `Quick test_scheduler_conservation;
          Alcotest.test_case "ordering invariants" `Quick test_scheduler_ordering_invariants;
          Alcotest.test_case "fifo order" `Quick test_scheduler_fifo_order;
          Alcotest.test_case "saturation" `Quick test_scheduler_saturation;
          Alcotest.test_case "single stream" `Quick test_scheduler_decode_rate_single_stream;
          Alcotest.test_case "context-aware slower" `Quick test_scheduler_context_aware_slower;
          Alcotest.test_case "context-aware short = flat" `Quick test_scheduler_context_aware_matches_flat_when_short;
          Alcotest.test_case "empty" `Quick test_scheduler_empty_edge;
        ] );
      qsuite "scheduler properties" [ prop_scheduler_conserves ];
    ]
