(* Tests for the deterministic domain-parallel execution layer (Hnlpu.Par)
   and the scheduler hot-path optimizations that ride on it:

   - parallel_map/parallel_init agree with their sequential counterparts
     for every pool width (the determinism guarantee, property-tested);
   - whole sweeps (Slo.sweep, Ablation, Quant_eval) are bit-identical
     across domain counts, including merged telemetry;
   - Scheduler.capacity_profile matches the naive fold it replaced;
   - Slo.evaluate's single-pass percentile arrays match a recomputation. *)

open Hnlpu

let config = Config.gpt_oss_120b

let widths = [ 1; 2; 4; 8 ]

(* --- Par combinators ------------------------------------------------------ *)

let prop_parallel_map_is_map =
  QCheck.Test.make ~name:"parallel_map = List.map for j in {1,2,4,8}" ~count:30
    QCheck.(list (int_range (-1000) 1000))
    (fun xs ->
      let f x = (x * 31) + (x / 7) in
      let expect = List.map f xs in
      List.for_all (fun j -> Par.parallel_map ~domains:j f xs = expect) widths)

let prop_parallel_init_is_init =
  QCheck.Test.make ~name:"parallel_init = Array.init for j in {1,2,4,8}" ~count:30
    QCheck.(int_range 0 200)
    (fun n ->
      let f i = Printf.sprintf "%d:%d" i (i * i) in
      let expect = Array.init n f in
      List.for_all (fun j -> Par.parallel_init ~domains:j n f = expect) widths)

let test_parallel_sweep_deterministic () =
  let f rng x = (x, Rng.float rng 1.0, Rng.int rng 1000) in
  let xs = List.init 17 Fun.id in
  let base = Par.parallel_sweep ~domains:1 ~seed:99 f xs in
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "sweep identical at j=%d" j)
        true
        (Par.parallel_sweep ~domains:j ~seed:99 f xs = base))
    widths

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun j ->
      let raised =
        try
          ignore
            (Par.parallel_map ~domains:j
               (fun i -> if i mod 3 = 2 then raise (Boom i) else i)
               (List.init 12 Fun.id));
          None
        with Boom i -> Some i
      in
      (* Lowest-indexed failing task wins, regardless of completion order. *)
      Alcotest.(check (option int))
        (Printf.sprintf "first failure by index at j=%d" j)
        (Some 2) raised)
    widths

let test_nested_region_degrades () =
  (* A task that itself calls parallel_map must complete (sequentially)
     rather than deadlock the pool. *)
  let out =
    Par.parallel_map ~domains:4
      (fun i ->
        List.fold_left ( + ) 0
          (Par.parallel_map ~domains:4 (fun x -> x * i) [ 1; 2; 3 ]))
      (List.init 8 Fun.id)
  in
  Alcotest.(check (list int))
    "nested results" (List.init 8 (fun i -> 6 * i)) out

let test_default_domains_positive () =
  Alcotest.(check bool) "width >= 1" true (Par.default_domains () >= 1);
  Alcotest.(check bool) "j=0 rejected" true
    (try
       Par.set_default_domains 0;
       false
     with Invalid_argument _ -> true)

(* --- Rng.derive ----------------------------------------------------------- *)

let test_derive_independent_streams () =
  let draws seed stream =
    let rng = Rng.derive seed ~stream in
    List.init 8 (fun _ -> Rng.next_int64 rng)
  in
  Alcotest.(check bool) "same (seed, stream) reproduces" true
    (draws 7 3 = draws 7 3);
  Alcotest.(check bool) "streams differ" true (draws 7 0 <> draws 7 1);
  Alcotest.(check bool) "seeds differ" true (draws 7 0 <> draws 8 0);
  Alcotest.(check bool) "negative stream rejected" true
    (try
       ignore (Rng.derive 1 ~stream:(-1));
       false
     with Invalid_argument _ -> true)

(* --- Scheduler.capacity_profile ------------------------------------------- *)

let naive_capacity ~slots failures now =
  let lost =
    List.fold_left (fun acc (t, n) -> if t <= now then acc + n else acc) 0 failures
  in
  max 0 (slots - lost)

let prop_capacity_profile_equiv =
  let gen =
    QCheck.make
      ~print:(fun (fs, probes) ->
        Printf.sprintf "failures=%s probes=%s"
          (String.concat ";"
             (List.map (fun (t, n) -> Printf.sprintf "(%.3f,%d)" t n) fs))
          (String.concat ";" (List.map (Printf.sprintf "%.3f") probes)))
      QCheck.Gen.(
        pair
          (list_size (int_range 0 20)
             (pair (float_bound_exclusive 10.0) (int_range 0 5)))
          (list_size (int_range 1 50) (float_bound_exclusive 12.0)))
  in
  QCheck.Test.make ~name:"capacity_profile = naive fold" ~count:200 gen
    (fun (failures, probes) ->
      let slots = 216 in
      let profile = Scheduler.capacity_profile ~slots failures in
      List.for_all
        (fun now -> profile now = naive_capacity ~slots failures now)
        probes)

let test_capacity_profile_ties () =
  (* Several failures at the same instant: the whole tie group counts. *)
  let failures = [ (2.0, 3); (1.0, 4); (2.0, 5) ] in
  let profile = Scheduler.capacity_profile ~slots:10 failures in
  Alcotest.(check int) "before any" 10 (profile 0.5);
  Alcotest.(check int) "after first" 6 (profile 1.0);
  Alcotest.(check int) "tie group at once" 0 (profile 2.0);
  Alcotest.(check int) "clamped at zero" 0 (profile 9.0)

let test_simulate_with_failures_unchanged () =
  (* The prefix-sum capacity must reproduce the fold-based simulator on a
     seeded failure workload, field for field. *)
  let reqs =
    Scheduler.workload (Rng.create 11) ~n:120 ~rate_per_s:4000.0 ~mean_prefill:64
      ~mean_decode:32
  in
  let failures = [ (0.02, 40); (0.05, 80); (0.02, 16) ] in
  let r = Scheduler.simulate ~slot_failures:failures config reqs in
  let naive = naive_capacity ~slots:(Perf.pipeline_slots config) failures in
  Alcotest.(check int) "no request lost" 120
    (List.length r.Scheduler.completed_requests);
  Alcotest.(check bool) "capacity shrank during run" true (naive 1.0 < 216);
  Alcotest.(check bool) "throughput positive" true
    (r.Scheduler.throughput_tokens_per_s > 0.0)

(* --- Slo: single-pass evaluate and parallel sweep -------------------------- *)

let test_evaluate_single_pass_regression () =
  (* Recompute the latency series from the raw scheduler result and pin
     the evaluation to a locally fed sketch (byte-identical state ⇒
     identical quantile), then check the sketch answer stays within its
     documented bound of the exact percentile. *)
  let rate_per_s = 3000.0 in
  let rng = Rng.create 1234 in
  let reqs =
    Scheduler.workload rng ~n:150 ~rate_per_s ~mean_prefill:256 ~mean_decode:128
  in
  let r = Scheduler.simulate config reqs in
  let of_completed f = Array.of_list (List.map f r.Scheduler.completed_requests) in
  let ttft =
    of_completed (fun c ->
        c.Scheduler.first_token_s -. c.Scheduler.request.Scheduler.arrival_s)
  in
  let e2e =
    of_completed (fun c ->
        c.Scheduler.finish_s -. c.Scheduler.request.Scheduler.arrival_s)
  in
  let sketch_p95 xs =
    let sk = Obs.Sketch.create () in
    Array.iter (Obs.Sketch.observe sk) xs;
    Obs.Sketch.quantile sk 0.95
  in
  let e = Slo.evaluate config Slo.interactive ~rate_per_s in
  Alcotest.(check (float 0.0)) "ttft p95 = sketch" (sketch_p95 ttft) e.Slo.ttft_p95;
  Alcotest.(check (float 0.0)) "e2e p95 = sketch" (sketch_p95 e2e) e.Slo.e2e_p95;
  let within_bound name exact est =
    Alcotest.(check bool) name true
      (Float.abs (est -. exact)
      <= (Obs.Sketch.relative_error *. Float.abs exact) +. 1e-12)
  in
  within_bound "ttft p95 within bound" (Stats.percentile ttft 0.95) e.Slo.ttft_p95;
  within_bound "e2e p95 within bound" (Stats.percentile e2e 0.95) e.Slo.e2e_p95;
  Alcotest.(check (float 0.0)) "throughput exact" r.Scheduler.throughput_tokens_per_s
    e.Slo.throughput_tokens_per_s

let sweep_rates = [ 1000.0; 3000.0; 6000.0; 9000.0; 12000.0 ]

let test_slo_sweep_identical_across_widths () =
  let run j = Slo.sweep ~requests:40 ~domains:j config Slo.interactive ~rates:sweep_rates in
  let base = run 1 in
  Alcotest.(check int) "one evaluation per rate" (List.length sweep_rates)
    (List.length base);
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "Slo.sweep identical at j=%d" j)
        true (run j = base))
    widths

let test_slo_sweep_matches_sequential_evaluate () =
  let base =
    List.map
      (fun rate_per_s -> Slo.evaluate ~requests:40 config Slo.interactive ~rate_per_s)
      sweep_rates
  in
  Alcotest.(check bool) "sweep = mapped evaluate" true
    (Slo.sweep ~requests:40 ~domains:4 config Slo.interactive ~rates:sweep_rates = base)

let test_slo_sweep_obs_merge_deterministic () =
  let run j =
    let obs = Obs.Sink.create () in
    ignore (Slo.sweep ~requests:30 ~domains:j ~obs config Slo.interactive
              ~rates:sweep_rates);
    (Obs.Sink.events obs, Obs.Metrics.to_json (Obs.Sink.metrics obs))
  in
  let events1, metrics1 = run 1 in
  let events4, metrics4 = run 4 in
  Alcotest.(check bool) "telemetry non-empty" true (events1 <> []);
  Alcotest.(check bool) "event timeline identical" true (events1 = events4);
  Alcotest.(check string) "metrics registry identical" metrics1 metrics4

(* --- Sweep determinism across the other parallelized modules --------------- *)

let test_ablation_sweeps_identical_across_widths () =
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "interconnect at j=%d" j)
        true
        (Ablation.interconnect_sweep ~domains:j config
        = Ablation.interconnect_sweep ~domains:1 config);
      Alcotest.(check bool)
        (Printf.sprintf "precision at j=%d" j)
        true
        (Ablation.precision_sweep ~domains:j config
        = Ablation.precision_sweep ~domains:1 config);
      Alcotest.(check bool)
        (Printf.sprintf "slack at j=%d" j)
        true
        (Ablation.slack_sweep (Rng.create 5) ~domains:j ~trials:60 ()
        = Ablation.slack_sweep (Rng.create 5) ~domains:1 ~trials:60 ());
      Alcotest.(check bool)
        (Printf.sprintf "speculative at j=%d" j)
        true
        (Ablation.speculative_sweep ~domains:j config
        = Ablation.speculative_sweep ~domains:1 config))
    widths

let test_quant_eval_identical_across_widths () =
  let run j =
    Quant_eval.evaluate ~domains:j ~sequences:6 ~length:8 (Rng.create 3)
      Config.tiny_hnlpu
  in
  let base = run 1 in
  Alcotest.(check bool) "scored tokens" true (base.Quant_eval.tokens_scored > 0);
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "quant report identical at j=%d" j)
        true (run j = base))
    widths

let test_scaling_and_tornado_identical_across_widths () =
  let scaling_base = Scaling.sweep ~domains:1 () in
  let tornado_base = Sensitivity.tornado ~domains:1 () in
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "scaling at j=%d" j)
        true
        (Scaling.sweep ~domains:j () = scaling_base);
      Alcotest.(check bool)
        (Printf.sprintf "tornado at j=%d" j)
        true
        (Sensitivity.tornado ~domains:j () = tornado_base))
    widths

let test_experiments_identical_across_widths () =
  let base = Experiments.all ~domains:1 () in
  Alcotest.(check int) "nine artifacts" 9 (List.length base);
  Alcotest.(check bool) "tables identical at j=4" true
    (Experiments.all ~domains:4 () = base)

(* --- Obs merge primitives -------------------------------------------------- *)

let test_metrics_merge () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.incr a "m/count" ~by:2.0;
  Obs.Metrics.incr b "m/count" ~by:3.0;
  Obs.Metrics.set b "m/gauge" 7.0;
  (* Exact mode opted in so raw samples survive the merge and can be
     asserted on; sketch-histogram merging is covered in test_obs. *)
  Obs.Metrics.observe a ~exact:true "m/hist" 1.0;
  Obs.Metrics.observe b ~exact:true "m/hist" 2.0;
  Obs.Metrics.observe b ~exact:true "m/hist" 3.0;
  Obs.Metrics.merge_into ~into:a b;
  Alcotest.(check (option (float 0.0))) "counters add" (Some 5.0)
    (Obs.Metrics.counter a "m/count");
  Alcotest.(check (option (float 0.0))) "gauge copied" (Some 7.0)
    (Obs.Metrics.gauge a "m/gauge");
  Alcotest.(check (option (array (float 0.0)))) "hist samples appended"
    (Some [| 1.0; 2.0; 3.0 |])
    (Obs.Metrics.samples a "m/hist")

let test_metrics_merge_kind_clash () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.incr a "x";
  Obs.Metrics.set b "x" 1.0;
  Alcotest.(check bool) "kind clash raises" true
    (try
       Obs.Metrics.merge_into ~into:a b;
       false
     with Invalid_argument _ -> true)

let test_sink_merge_preserves_order () =
  let t = Obs.Event.track ~process:"p" ~thread:"t" in
  let a = Obs.Sink.create () and b = Obs.Sink.create () in
  Obs.Sink.instant a ~track:t ~name:"a1" ~ts_s:0.0;
  Obs.Sink.instant b ~track:t ~name:"b1" ~ts_s:1.0;
  Obs.Sink.instant b ~track:t ~name:"b2" ~ts_s:2.0;
  Obs.Sink.merge_into ~into:a b;
  let names =
    List.filter_map
      (function Obs.Event.Instant { name; _ } -> Some name | _ -> None)
      (Obs.Sink.events a)
  in
  Alcotest.(check (list string)) "b appended after a, in order"
    [ "a1"; "b1"; "b2" ] names

(* --- Pool lifecycle -------------------------------------------------------- *)

let wait_for ?(timeout_s = 10.0) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout_s then false
    else begin
      Unix.sleepf 0.005;
      go ()
    end
  in
  go ()

let test_pool_identity_workers_visible () =
  (* Regression for the record-copy bug: [create] once returned
     [{ pool with workers }], so workers mutated a record the caller never
     saw.  [spawned_workers] counts on the caller's record — it only moves
     if workers and caller share state. *)
  let p = Par.create ~domains:3 () in
  Alcotest.(check int) "size" 3 (Par.size p);
  Alcotest.(check bool) "workers report on the caller's record" true
    (wait_for (fun () -> Par.spawned_workers p = 2));
  Par.shutdown p

let test_shutdown_quiesces () =
  let p = Par.create ~domains:4 () in
  let hits = Array.make 8 0 in
  Par.run_tasks p ~tasks:8 (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (array int)) "each task ran exactly once" (Array.make 8 1) hits;
  Par.shutdown p;
  Alcotest.(check bool) "dead after shutdown" false (Par.live p);
  Alcotest.(check int) "all spawned workers entered and were joined" 3
    (Par.spawned_workers p);
  (* Idempotent: a second shutdown must not raise or hang. *)
  Par.shutdown p;
  Alcotest.(check bool) "run_tasks on a dead pool is rejected" true
    (try
       Par.run_tasks p ~tasks:1 (fun _ -> ());
       false
     with Invalid_argument _ -> true)

let test_shared_pool_persistence () =
  let p2 = Par.shared ~domains:2 () in
  let p2' = Par.shared ~domains:2 () in
  Alcotest.(check bool) "same width returns the physically same pool" true
    (p2 == p2');
  Alcotest.(check bool) "shared pool live" true (Par.live p2);
  let p3 = Par.shared ~domains:3 () in
  Alcotest.(check bool) "width change builds a new pool" true (not (p3 == p2));
  Alcotest.(check bool) "old pool joined on resize" false (Par.live p2);
  Alcotest.(check bool) "resized pool live" true (Par.live p3);
  Alcotest.(check (list int)) "combinators work after resize" [ 2; 4; 6 ]
    (Par.parallel_map ~domains:3 (fun x -> x * 2) [ 1; 2; 3 ])

let test_catastrophe_propagates () =
  (* Worker tasks must not swallow runtime catastrophes: the historical
     [try f () with _ -> ()] in the worker loop turned these into silently
     missing results. *)
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "Out_of_memory surfaces at j=%d" j)
        true
        (try
           ignore
             (Par.parallel_map ~domains:j
                (fun i -> if i = 1 then raise Out_of_memory else i)
                [ 0; 1; 2; 3 ]);
           false
         with Out_of_memory -> true))
    widths

(* --- HNLPU_DOMAINS parsing -------------------------------------------------- *)

let with_env value f =
  let old = Sys.getenv_opt "HNLPU_DOMAINS" in
  Unix.putenv "HNLPU_DOMAINS" value;
  Fun.protect
    ~finally:(fun () ->
      (* [putenv ""] restores unset semantics: [env_domains] treats a blank
         value as absent. *)
      Unix.putenv "HNLPU_DOMAINS" (match old with Some v -> v | None -> ""))
    f

let rejects value =
  with_env value (fun () ->
      (try
         ignore (Par.env_domains ());
         false
       with Invalid_argument _ -> true)
      &&
      try
        ignore (Par.default_domains ());
        false
      with Invalid_argument _ -> true)

let test_env_domains_malformed_rejected () =
  Alcotest.(check bool) "\"0\" rejected" true (rejects "0");
  Alcotest.(check bool) "\"four\" rejected" true (rejects "four");
  Alcotest.(check bool) "\"-2\" rejected" true (rejects "-2");
  Alcotest.(check bool) "\"2x\" rejected" true (rejects "2x")

let test_env_domains_valid_and_unset () =
  with_env "3" (fun () ->
      Alcotest.(check (option int)) "\"3\" parsed" (Some 3) (Par.env_domains ()));
  with_env " 4 " (fun () ->
      Alcotest.(check (option int)) "whitespace trimmed" (Some 4)
        (Par.env_domains ()));
  with_env "" (fun () ->
      Alcotest.(check (option int)) "blank means unset" None (Par.env_domains ());
      Alcotest.(check bool) "default still resolves" true
        (Par.default_domains () >= 1))

(* --- Rng: unboxed representation is bit-exact ------------------------------- *)

(* The original boxed-[int64] SplitMix64, kept verbatim as the reference:
   the production generator now runs on immediate ints (two 32-bit halves)
   and must reproduce it bit for bit, or every committed experiment table
   would silently shift. *)
module Ref_rng = struct
  type t = { mutable state : int64 }

  let golden_gamma = 0x9E3779B97F4A7C15L

  let create seed = { state = Int64.of_int seed }

  let mix z =
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let next_int64 t =
    t.state <- Int64.add t.state golden_gamma;
    mix t.state

  let split t =
    let seed = next_int64 t in
    { state = mix seed }

  let derive seed ~stream =
    let s =
      mix
        (Int64.add (Int64.of_int seed)
           (Int64.mul golden_gamma (Int64.of_int (stream + 1))))
    in
    { state = mix s }

  let int t bound =
    let mask =
      Int64.to_int (Int64.shift_right_logical (next_int64 t) 1) land max_int
    in
    mask mod bound

  let float t bound =
    let bits = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
    bits /. 9007199254740992.0 *. bound
end

let agree_for_draws rng ref_rng =
  let ok = ref true in
  for _ = 1 to 16 do
    if Rng.next_int64 rng <> Ref_rng.next_int64 ref_rng then ok := false
  done;
  List.iter
    (fun bound -> if Rng.int rng bound <> Ref_rng.int ref_rng bound then ok := false)
    [ 1; 2; 7; 1000; 1 lsl 30; max_int ];
  List.iter
    (fun bound ->
      if Rng.float rng bound <> Ref_rng.float ref_rng bound then ok := false)
    [ 1.0; 1e-9; 2048.0 ];
  !ok

let prop_rng_create_matches_reference =
  QCheck.Test.make ~name:"Rng.create bit-exact vs boxed-int64 reference" ~count:200
    QCheck.int
    (fun seed ->
      let a = Rng.create seed and b = Ref_rng.create seed in
      agree_for_draws a b
      &&
      (* Splitting must track too: both the child stream and the advanced
         parent stream. *)
      let a' = Rng.split a and b' = Ref_rng.split b in
      agree_for_draws a' b' && agree_for_draws a b)

let prop_rng_derive_matches_reference =
  QCheck.Test.make ~name:"Rng.derive bit-exact vs boxed-int64 reference" ~count:200
    QCheck.(pair int (int_range 0 1024))
    (fun (seed, stream) ->
      agree_for_draws (Rng.derive seed ~stream) (Ref_rng.derive seed ~stream))

(* --- Counters-only sinks ---------------------------------------------------- *)

let test_counters_only_sink () =
  let track = Obs.Event.track ~process:"p" ~thread:"t" in
  let s = Obs.Sink.create ~events:false () in
  Alcotest.(check bool) "events disabled" false (Obs.Sink.events_enabled s);
  Obs.Sink.instant s ~track ~name:"i" ~ts_s:0.0;
  Obs.Sink.span s ~track ~name:"sp" ~start_s:0.0 ~dur_s:1.0;
  Obs.Sink.sample s ~track ~name:"g" ~ts_s:0.5 3.5;
  Alcotest.(check int) "no events retained" 0 (List.length (Obs.Sink.events s));
  Alcotest.(check int) "no events recorded at all" 0 (Obs.Sink.recorded s);
  Alcotest.(check (option (float 0.0))) "sample still lands as a gauge"
    (Some 3.5)
    (Obs.Metrics.gauge (Obs.Sink.metrics s) "g");
  Alcotest.(check bool) "span validation still applies" true
    (try
       Obs.Sink.span s ~track ~name:"bad" ~start_s:0.0 ~dur_s:(-1.0);
       false
     with Invalid_argument _ -> true)

let test_slo_sweep_counters_only_metrics_match () =
  let run events =
    let obs = Obs.Sink.create ~events () in
    ignore
      (Slo.sweep ~requests:30 ~domains:4 ~obs config Slo.interactive
         ~rates:sweep_rates);
    (Obs.Sink.events obs, Obs.Metrics.to_json (Obs.Sink.metrics obs))
  in
  let ev_full, m_full = run true in
  let ev_off, m_off = run false in
  Alcotest.(check bool) "full sink sees events" true (ev_full <> []);
  Alcotest.(check int) "counters-only sink sees none" 0 (List.length ev_off);
  Alcotest.(check string) "metrics registries identical" m_full m_off

(* --- Perf.token_latency_cached --------------------------------------------- *)

let test_latency_cache_agrees () =
  List.iter
    (fun context ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "cached = direct at %d" context)
        (Perf.token_latency_s config ~context)
        (Perf.token_latency_cached config ~context))
    [ 2048; 8192; 65536; 2048 ]

let qt t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "hnlpu-par"
    [
      ( "par-combinators",
        [
          qt prop_parallel_map_is_map;
          qt prop_parallel_init_is_init;
          Alcotest.test_case "parallel_sweep deterministic" `Quick
            test_parallel_sweep_deterministic;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "nested regions" `Quick test_nested_region_degrades;
          Alcotest.test_case "default width" `Quick test_default_domains_positive;
        ] );
      ( "rng-derive",
        [ Alcotest.test_case "independent streams" `Quick test_derive_independent_streams ] );
      ( "scheduler-capacity",
        [
          qt prop_capacity_profile_equiv;
          Alcotest.test_case "tie groups" `Quick test_capacity_profile_ties;
          Alcotest.test_case "failure workload" `Quick
            test_simulate_with_failures_unchanged;
        ] );
      ( "slo",
        [
          Alcotest.test_case "single-pass regression" `Quick
            test_evaluate_single_pass_regression;
          Alcotest.test_case "sweep identical across widths" `Quick
            test_slo_sweep_identical_across_widths;
          Alcotest.test_case "sweep = mapped evaluate" `Quick
            test_slo_sweep_matches_sequential_evaluate;
          Alcotest.test_case "telemetry merge deterministic" `Quick
            test_slo_sweep_obs_merge_deterministic;
        ] );
      ( "sweep-determinism",
        [
          Alcotest.test_case "ablations" `Quick test_ablation_sweeps_identical_across_widths;
          Alcotest.test_case "quant-eval" `Quick test_quant_eval_identical_across_widths;
          Alcotest.test_case "scaling + tornado" `Quick
            test_scaling_and_tornado_identical_across_widths;
          Alcotest.test_case "experiments tables" `Quick
            test_experiments_identical_across_widths;
        ] );
      ( "pool-lifecycle",
        [
          Alcotest.test_case "pool identity (record-copy regression)" `Quick
            test_pool_identity_workers_visible;
          Alcotest.test_case "shutdown quiesces" `Quick test_shutdown_quiesces;
          Alcotest.test_case "shared pool persistence" `Quick
            test_shared_pool_persistence;
          Alcotest.test_case "catastrophes surface" `Quick test_catastrophe_propagates;
        ] );
      ( "env-width",
        [
          Alcotest.test_case "malformed HNLPU_DOMAINS rejected" `Quick
            test_env_domains_malformed_rejected;
          Alcotest.test_case "valid and unset values" `Quick
            test_env_domains_valid_and_unset;
        ] );
      ( "rng-exact",
        [ qt prop_rng_create_matches_reference; qt prop_rng_derive_matches_reference ] );
      ( "counters-only",
        [
          Alcotest.test_case "sink semantics" `Quick test_counters_only_sink;
          Alcotest.test_case "sweep metrics match" `Quick
            test_slo_sweep_counters_only_metrics_match;
        ] );
      ( "obs-merge",
        [
          Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
          Alcotest.test_case "kind clash" `Quick test_metrics_merge_kind_clash;
          Alcotest.test_case "sink order" `Quick test_sink_merge_preserves_order;
        ] );
      ( "perf-cache",
        [ Alcotest.test_case "cached = direct" `Quick test_latency_cache_agrees ] );
    ]
