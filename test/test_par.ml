(* Tests for the deterministic domain-parallel execution layer (Hnlpu.Par)
   and the scheduler hot-path optimizations that ride on it:

   - parallel_map/parallel_init agree with their sequential counterparts
     for every pool width (the determinism guarantee, property-tested);
   - whole sweeps (Slo.sweep, Ablation, Quant_eval) are bit-identical
     across domain counts, including merged telemetry;
   - Scheduler.capacity_profile matches the naive fold it replaced;
   - Slo.evaluate's single-pass percentile arrays match a recomputation. *)

open Hnlpu

let config = Config.gpt_oss_120b

let widths = [ 1; 2; 4; 8 ]

(* --- Par combinators ------------------------------------------------------ *)

let prop_parallel_map_is_map =
  QCheck.Test.make ~name:"parallel_map = List.map for j in {1,2,4,8}" ~count:30
    QCheck.(list (int_range (-1000) 1000))
    (fun xs ->
      let f x = (x * 31) + (x / 7) in
      let expect = List.map f xs in
      List.for_all (fun j -> Par.parallel_map ~domains:j f xs = expect) widths)

let prop_parallel_init_is_init =
  QCheck.Test.make ~name:"parallel_init = Array.init for j in {1,2,4,8}" ~count:30
    QCheck.(int_range 0 200)
    (fun n ->
      let f i = Printf.sprintf "%d:%d" i (i * i) in
      let expect = Array.init n f in
      List.for_all (fun j -> Par.parallel_init ~domains:j n f = expect) widths)

let test_parallel_sweep_deterministic () =
  let f rng x = (x, Rng.float rng 1.0, Rng.int rng 1000) in
  let xs = List.init 17 Fun.id in
  let base = Par.parallel_sweep ~domains:1 ~seed:99 f xs in
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "sweep identical at j=%d" j)
        true
        (Par.parallel_sweep ~domains:j ~seed:99 f xs = base))
    widths

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun j ->
      let raised =
        try
          ignore
            (Par.parallel_map ~domains:j
               (fun i -> if i mod 3 = 2 then raise (Boom i) else i)
               (List.init 12 Fun.id));
          None
        with Boom i -> Some i
      in
      (* Lowest-indexed failing task wins, regardless of completion order. *)
      Alcotest.(check (option int))
        (Printf.sprintf "first failure by index at j=%d" j)
        (Some 2) raised)
    widths

let test_nested_region_degrades () =
  (* A task that itself calls parallel_map must complete (sequentially)
     rather than deadlock the pool. *)
  let out =
    Par.parallel_map ~domains:4
      (fun i ->
        List.fold_left ( + ) 0
          (Par.parallel_map ~domains:4 (fun x -> x * i) [ 1; 2; 3 ]))
      (List.init 8 Fun.id)
  in
  Alcotest.(check (list int))
    "nested results" (List.init 8 (fun i -> 6 * i)) out

let test_default_domains_positive () =
  Alcotest.(check bool) "width >= 1" true (Par.default_domains () >= 1);
  Alcotest.(check bool) "j=0 rejected" true
    (try
       Par.set_default_domains 0;
       false
     with Invalid_argument _ -> true)

(* --- Rng.derive ----------------------------------------------------------- *)

let test_derive_independent_streams () =
  let draws seed stream =
    let rng = Rng.derive seed ~stream in
    List.init 8 (fun _ -> Rng.next_int64 rng)
  in
  Alcotest.(check bool) "same (seed, stream) reproduces" true
    (draws 7 3 = draws 7 3);
  Alcotest.(check bool) "streams differ" true (draws 7 0 <> draws 7 1);
  Alcotest.(check bool) "seeds differ" true (draws 7 0 <> draws 8 0);
  Alcotest.(check bool) "negative stream rejected" true
    (try
       ignore (Rng.derive 1 ~stream:(-1));
       false
     with Invalid_argument _ -> true)

(* --- Scheduler.capacity_profile ------------------------------------------- *)

let naive_capacity ~slots failures now =
  let lost =
    List.fold_left (fun acc (t, n) -> if t <= now then acc + n else acc) 0 failures
  in
  max 0 (slots - lost)

let prop_capacity_profile_equiv =
  let gen =
    QCheck.make
      ~print:(fun (fs, probes) ->
        Printf.sprintf "failures=%s probes=%s"
          (String.concat ";"
             (List.map (fun (t, n) -> Printf.sprintf "(%.3f,%d)" t n) fs))
          (String.concat ";" (List.map (Printf.sprintf "%.3f") probes)))
      QCheck.Gen.(
        pair
          (list_size (int_range 0 20)
             (pair (float_bound_exclusive 10.0) (int_range 0 5)))
          (list_size (int_range 1 50) (float_bound_exclusive 12.0)))
  in
  QCheck.Test.make ~name:"capacity_profile = naive fold" ~count:200 gen
    (fun (failures, probes) ->
      let slots = 216 in
      let profile = Scheduler.capacity_profile ~slots failures in
      List.for_all
        (fun now -> profile now = naive_capacity ~slots failures now)
        probes)

let test_capacity_profile_ties () =
  (* Several failures at the same instant: the whole tie group counts. *)
  let failures = [ (2.0, 3); (1.0, 4); (2.0, 5) ] in
  let profile = Scheduler.capacity_profile ~slots:10 failures in
  Alcotest.(check int) "before any" 10 (profile 0.5);
  Alcotest.(check int) "after first" 6 (profile 1.0);
  Alcotest.(check int) "tie group at once" 0 (profile 2.0);
  Alcotest.(check int) "clamped at zero" 0 (profile 9.0)

let test_simulate_with_failures_unchanged () =
  (* The prefix-sum capacity must reproduce the fold-based simulator on a
     seeded failure workload, field for field. *)
  let reqs =
    Scheduler.workload (Rng.create 11) ~n:120 ~rate_per_s:4000.0 ~mean_prefill:64
      ~mean_decode:32
  in
  let failures = [ (0.02, 40); (0.05, 80); (0.02, 16) ] in
  let r = Scheduler.simulate ~slot_failures:failures config reqs in
  let naive = naive_capacity ~slots:(Perf.pipeline_slots config) failures in
  Alcotest.(check int) "no request lost" 120
    (List.length r.Scheduler.completed_requests);
  Alcotest.(check bool) "capacity shrank during run" true (naive 1.0 < 216);
  Alcotest.(check bool) "throughput positive" true
    (r.Scheduler.throughput_tokens_per_s > 0.0)

(* --- Slo: single-pass evaluate and parallel sweep -------------------------- *)

let test_evaluate_single_pass_regression () =
  (* Recompute the percentiles from the raw scheduler result the way the
     two-pass implementation did and pin the evaluation to them. *)
  let rate_per_s = 3000.0 in
  let rng = Rng.create 1234 in
  let reqs =
    Scheduler.workload rng ~n:150 ~rate_per_s ~mean_prefill:256 ~mean_decode:128
  in
  let r = Scheduler.simulate config reqs in
  let of_completed f = Array.of_list (List.map f r.Scheduler.completed_requests) in
  let ttft =
    of_completed (fun c ->
        c.Scheduler.first_token_s -. c.Scheduler.request.Scheduler.arrival_s)
  in
  let e2e =
    of_completed (fun c ->
        c.Scheduler.finish_s -. c.Scheduler.request.Scheduler.arrival_s)
  in
  let e = Slo.evaluate config Slo.interactive ~rate_per_s in
  Alcotest.(check (float 0.0)) "ttft p95 exact" (Stats.percentile ttft 0.95) e.Slo.ttft_p95;
  Alcotest.(check (float 0.0)) "e2e p95 exact" (Stats.percentile e2e 0.95) e.Slo.e2e_p95;
  Alcotest.(check (float 0.0)) "throughput exact" r.Scheduler.throughput_tokens_per_s
    e.Slo.throughput_tokens_per_s

let sweep_rates = [ 1000.0; 3000.0; 6000.0; 9000.0; 12000.0 ]

let test_slo_sweep_identical_across_widths () =
  let run j = Slo.sweep ~requests:40 ~domains:j config Slo.interactive ~rates:sweep_rates in
  let base = run 1 in
  Alcotest.(check int) "one evaluation per rate" (List.length sweep_rates)
    (List.length base);
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "Slo.sweep identical at j=%d" j)
        true (run j = base))
    widths

let test_slo_sweep_matches_sequential_evaluate () =
  let base =
    List.map
      (fun rate_per_s -> Slo.evaluate ~requests:40 config Slo.interactive ~rate_per_s)
      sweep_rates
  in
  Alcotest.(check bool) "sweep = mapped evaluate" true
    (Slo.sweep ~requests:40 ~domains:4 config Slo.interactive ~rates:sweep_rates = base)

let test_slo_sweep_obs_merge_deterministic () =
  let run j =
    let obs = Obs.Sink.create () in
    ignore (Slo.sweep ~requests:30 ~domains:j ~obs config Slo.interactive
              ~rates:sweep_rates);
    (Obs.Sink.events obs, Obs.Metrics.to_json (Obs.Sink.metrics obs))
  in
  let events1, metrics1 = run 1 in
  let events4, metrics4 = run 4 in
  Alcotest.(check bool) "telemetry non-empty" true (events1 <> []);
  Alcotest.(check bool) "event timeline identical" true (events1 = events4);
  Alcotest.(check string) "metrics registry identical" metrics1 metrics4

(* --- Sweep determinism across the other parallelized modules --------------- *)

let test_ablation_sweeps_identical_across_widths () =
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "interconnect at j=%d" j)
        true
        (Ablation.interconnect_sweep ~domains:j config
        = Ablation.interconnect_sweep ~domains:1 config);
      Alcotest.(check bool)
        (Printf.sprintf "precision at j=%d" j)
        true
        (Ablation.precision_sweep ~domains:j config
        = Ablation.precision_sweep ~domains:1 config);
      Alcotest.(check bool)
        (Printf.sprintf "slack at j=%d" j)
        true
        (Ablation.slack_sweep (Rng.create 5) ~domains:j ~trials:60 ()
        = Ablation.slack_sweep (Rng.create 5) ~domains:1 ~trials:60 ());
      Alcotest.(check bool)
        (Printf.sprintf "speculative at j=%d" j)
        true
        (Ablation.speculative_sweep ~domains:j config
        = Ablation.speculative_sweep ~domains:1 config))
    widths

let test_quant_eval_identical_across_widths () =
  let run j =
    Quant_eval.evaluate ~domains:j ~sequences:6 ~length:8 (Rng.create 3)
      Config.tiny_hnlpu
  in
  let base = run 1 in
  Alcotest.(check bool) "scored tokens" true (base.Quant_eval.tokens_scored > 0);
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "quant report identical at j=%d" j)
        true (run j = base))
    widths

let test_scaling_and_tornado_identical_across_widths () =
  let scaling_base = Scaling.sweep ~domains:1 () in
  let tornado_base = Sensitivity.tornado ~domains:1 () in
  List.iter
    (fun j ->
      Alcotest.(check bool)
        (Printf.sprintf "scaling at j=%d" j)
        true
        (Scaling.sweep ~domains:j () = scaling_base);
      Alcotest.(check bool)
        (Printf.sprintf "tornado at j=%d" j)
        true
        (Sensitivity.tornado ~domains:j () = tornado_base))
    widths

let test_experiments_identical_across_widths () =
  let base = Experiments.all ~domains:1 () in
  Alcotest.(check int) "nine artifacts" 9 (List.length base);
  Alcotest.(check bool) "tables identical at j=4" true
    (Experiments.all ~domains:4 () = base)

(* --- Obs merge primitives -------------------------------------------------- *)

let test_metrics_merge () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.incr a "m/count" ~by:2.0;
  Obs.Metrics.incr b "m/count" ~by:3.0;
  Obs.Metrics.set b "m/gauge" 7.0;
  Obs.Metrics.observe a "m/hist" 1.0;
  Obs.Metrics.observe b "m/hist" 2.0;
  Obs.Metrics.observe b "m/hist" 3.0;
  Obs.Metrics.merge_into ~into:a b;
  Alcotest.(check (option (float 0.0))) "counters add" (Some 5.0)
    (Obs.Metrics.counter a "m/count");
  Alcotest.(check (option (float 0.0))) "gauge copied" (Some 7.0)
    (Obs.Metrics.gauge a "m/gauge");
  Alcotest.(check (option (array (float 0.0)))) "hist samples appended"
    (Some [| 1.0; 2.0; 3.0 |])
    (Obs.Metrics.samples a "m/hist")

let test_metrics_merge_kind_clash () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.incr a "x";
  Obs.Metrics.set b "x" 1.0;
  Alcotest.(check bool) "kind clash raises" true
    (try
       Obs.Metrics.merge_into ~into:a b;
       false
     with Invalid_argument _ -> true)

let test_sink_merge_preserves_order () =
  let t = Obs.Event.track ~process:"p" ~thread:"t" in
  let a = Obs.Sink.create () and b = Obs.Sink.create () in
  Obs.Sink.instant a ~track:t ~name:"a1" ~ts_s:0.0;
  Obs.Sink.instant b ~track:t ~name:"b1" ~ts_s:1.0;
  Obs.Sink.instant b ~track:t ~name:"b2" ~ts_s:2.0;
  Obs.Sink.merge_into ~into:a b;
  let names =
    List.filter_map
      (function Obs.Event.Instant { name; _ } -> Some name | _ -> None)
      (Obs.Sink.events a)
  in
  Alcotest.(check (list string)) "b appended after a, in order"
    [ "a1"; "b1"; "b2" ] names

(* --- Perf.token_latency_cached --------------------------------------------- *)

let test_latency_cache_agrees () =
  List.iter
    (fun context ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "cached = direct at %d" context)
        (Perf.token_latency_s config ~context)
        (Perf.token_latency_cached config ~context))
    [ 2048; 8192; 65536; 2048 ]

let qt t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "hnlpu-par"
    [
      ( "par-combinators",
        [
          qt prop_parallel_map_is_map;
          qt prop_parallel_init_is_init;
          Alcotest.test_case "parallel_sweep deterministic" `Quick
            test_parallel_sweep_deterministic;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "nested regions" `Quick test_nested_region_degrades;
          Alcotest.test_case "default width" `Quick test_default_domains_positive;
        ] );
      ( "rng-derive",
        [ Alcotest.test_case "independent streams" `Quick test_derive_independent_streams ] );
      ( "scheduler-capacity",
        [
          qt prop_capacity_profile_equiv;
          Alcotest.test_case "tie groups" `Quick test_capacity_profile_ties;
          Alcotest.test_case "failure workload" `Quick
            test_simulate_with_failures_unchanged;
        ] );
      ( "slo",
        [
          Alcotest.test_case "single-pass regression" `Quick
            test_evaluate_single_pass_regression;
          Alcotest.test_case "sweep identical across widths" `Quick
            test_slo_sweep_identical_across_widths;
          Alcotest.test_case "sweep = mapped evaluate" `Quick
            test_slo_sweep_matches_sequential_evaluate;
          Alcotest.test_case "telemetry merge deterministic" `Quick
            test_slo_sweep_obs_merge_deterministic;
        ] );
      ( "sweep-determinism",
        [
          Alcotest.test_case "ablations" `Quick test_ablation_sweeps_identical_across_widths;
          Alcotest.test_case "quant-eval" `Quick test_quant_eval_identical_across_widths;
          Alcotest.test_case "scaling + tornado" `Quick
            test_scaling_and_tornado_identical_across_widths;
          Alcotest.test_case "experiments tables" `Quick
            test_experiments_identical_across_widths;
        ] );
      ( "obs-merge",
        [
          Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
          Alcotest.test_case "kind clash" `Quick test_metrics_merge_kind_clash;
          Alcotest.test_case "sink order" `Quick test_sink_merge_preserves_order;
        ] );
      ( "perf-cache",
        [ Alcotest.test_case "cached = direct" `Quick test_latency_cache_agrees ] );
    ]
