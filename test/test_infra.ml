(* Tests for the reporting/infrastructure pieces added alongside the
   experiments: charts, CSV export, the priority heap, and the chart
   renderings of the paper's figures. *)

open Hnlpu_util

(* --- Heap ---------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h ~priority:p (int_of_float p)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, v) ->
      out := v :: !out;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted ascending" [ 1; 2; 3; 4; 5 ] (List.rev !out)

let test_heap_peek_pop () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty peek" true (Heap.peek h = None);
  Heap.push h ~priority:2.0 "b";
  Heap.push h ~priority:1.0 "a";
  (match Heap.peek h with
  | Some (p, v) ->
    Alcotest.(check (float 0.0)) "min priority" 1.0 p;
    Alcotest.(check string) "min value" "a" v
  | None -> Alcotest.fail "expected element");
  Alcotest.(check int) "size" 2 (Heap.size h);
  ignore (Heap.pop h);
  Alcotest.(check int) "size after pop" 1 (Heap.size h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in priority order" ~count:100
    QCheck.(list (float_range (-100.0) 100.0))
    (fun ps ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h ~priority:p p) ps;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      let drained = drain [] in
      drained = List.sort compare ps)

let prop_heap_interleaved =
  (* Regression for the pop space leak: interleaved pushes and pops (with
     grows in between) must keep size and peek agreeing with a sorted-list
     model at every step — exercising the slots pop vacates and push
     refills. *)
  QCheck.Test.make ~name:"interleaved push/pop tracks a sorted-list model"
    ~count:200
    QCheck.(list (pair bool (float_range (-100.0) 100.0)))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] in
      List.for_all
        (fun (is_pop, p) ->
          let step_ok =
            if is_pop then
              match (Heap.pop h, !model) with
              | None, [] -> true
              | Some (hp, _), m :: rest ->
                model := rest;
                hp = m
              | _ -> false
            else begin
              Heap.push h ~priority:p p;
              model := List.sort compare (p :: !model);
              true
            end
          in
          step_ok
          && Heap.size h = List.length !model
          && (match (Heap.peek h, !model) with
             | None, [] -> true
             | Some (hp, _), m :: _ -> hp = m
             | _ -> false))
        ops)

(* --- Chart --------------------------------------------------------------- *)

let test_bar_renders () =
  let s = Chart.bar [ ("alpha", 1.0); ("beta", 2.0); ("gamma", 0.5) ] in
  Alcotest.(check bool) "labels present" true
    (Thelp.contains s "alpha" && Thelp.contains s "gamma");
  (* beta has the longest bar. *)
  let lines = String.split_on_char '\n' s in
  let hashes l = List.length (String.split_on_char '#' l) in
  (match lines with
  | [ a; b; g; _ ] ->
    Alcotest.(check bool) "beta longest" true (hashes b > hashes a && hashes b > hashes g)
  | _ -> Alcotest.fail "expected three bars")

let test_bar_log_scale () =
  let s = Chart.bar ~log:true [ ("x", 0.1); ("y", 10.0) ] in
  Alcotest.(check bool) "renders" true (String.length s > 0);
  Alcotest.(check bool) "log rejects non-positive" true
    (try
       ignore (Chart.bar ~log:true [ ("x", 0.0) ]);
       false
     with Invalid_argument _ -> true)

let test_stacked_width_exact () =
  let s =
    Chart.stacked ~width:40 ~legend:[ "a"; "b"; "c" ]
      [ ("r1", [ 1.0; 2.0; 1.0 ]); ("r2", [ 0.0; 1.0; 0.0 ]) ]
  in
  (* Every bar between the pipes must be exactly 40 chars. *)
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         match String.index_opt line '|' with
         | Some i when String.length line > i + 1 && line.[String.length line - 1] = '|' ->
           Alcotest.(check int) "bar width" 40 (String.length line - i - 2)
         | _ -> ())

let test_stacked_validation () =
  Alcotest.(check bool) "arity mismatch" true
    (try
       ignore (Chart.stacked ~legend:[ "a" ] [ ("r", [ 1.0; 2.0 ]) ]);
       false
     with Invalid_argument _ -> true)

let test_sparkline () =
  let s = Chart.sparkline [| 0.0; 0.5; 1.0 |] in
  Alcotest.(check int) "one char per point" 3 (String.length s);
  Alcotest.(check char) "low" '.' s.[0];
  Alcotest.(check char) "high" '@' s.[2]

(* --- CSV ----------------------------------------------------------------- *)

let test_csv_roundtrip_structure () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Table.add_row t [ "1"; "x,y" ];
  Table.add_sep t;
  Table.add_row t [ "2"; "quote\"d" ];
  let csv = Table.to_csv t in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows (separator dropped)" 3 (List.length lines);
  Alcotest.(check bool) "comma cell quoted" true (Thelp.contains csv "\"x,y\"");
  Alcotest.(check bool) "quote escaped" true (Thelp.contains csv "\"quote\"\"d\"")

let test_experiments_export_csv () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "hnlpu_csv_test" in
  let paths = Hnlpu.Experiments.export_csv ~dir in
  Alcotest.(check int) "nine files" 9 (List.length paths);
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " exists") true (Sys.file_exists p);
      let ic = open_in p in
      let header = input_line ic in
      close_in ic;
      Alcotest.(check bool) "non-empty header" true (String.length header > 2))
    paths;
  List.iter Sys.remove paths;
  Sys.rmdir dir

let test_table_to_json () =
  let t = Table.create ~headers:[ "k"; "v" ] in
  Table.add_row t [ "a\"b"; "line1\nline2" ];
  Table.add_sep t;
  Table.add_row t [ "x"; "y" ];
  let j = Table.to_json t in
  Alcotest.(check bool) "escaped quote" true (Thelp.contains j "a\\\"b");
  Alcotest.(check bool) "escaped newline" true (Thelp.contains j "\\n");
  Alcotest.(check bool) "array of two objects" true
    (Thelp.contains j "[{" && Thelp.contains j "},{")

let test_experiments_export_json () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "hnlpu_json_test" in
  let paths = Hnlpu.Experiments.export_json ~dir in
  Alcotest.(check int) "nine files" 9 (List.length paths);
  List.iter
    (fun p ->
      let ic = open_in p in
      let first = input_char ic in
      close_in ic;
      Alcotest.(check char) "json array" '[' first)
    paths;
  List.iter Sys.remove paths;
  Sys.rmdir dir

let test_calibration_registry () =
  (* Single-digit knob count, live values in sync with the code. *)
  Alcotest.(check bool) "few knobs" true (Hnlpu.Calibration.count () < 10);
  let get name =
    (List.find (fun e -> e.Hnlpu.Calibration.constant = name) (Hnlpu.Calibration.all ()))
      .Hnlpu.Calibration.value
  in
  Alcotest.(check (float 0.0)) "contention live" Hnlpu.Perf.link_contention_factor
    (get "Perf.link_contention_factor");
  Alcotest.(check (float 0.0)) "ports live"
    (float_of_int Hnlpu.Census.popcount_port_transistors)
    (get "Census.popcount_port_transistors");
  Alcotest.(check bool) "renders" true
    (Thelp.contains (Table.render (Hnlpu.Calibration.to_table ())) "Anchor")

(* --- Figure charts ---------------------------------------------------------- *)

let test_figure_charts_render () =
  let f12 = Hnlpu.Experiments.figure12_chart () in
  let f13 = Hnlpu.Experiments.figure13_chart () in
  let f14 = Hnlpu.Experiments.figure14_chart () in
  Alcotest.(check bool) "figure 12 mentions all designs" true
    (Thelp.contains f12 "Metal-Embedding" && Thelp.contains f12 "Cell-Embedding");
  Alcotest.(check bool) "figure 13 log bars" true (Thelp.contains f13 "MAC array");
  Alcotest.(check bool) "figure 14 stacked rows" true
    (Thelp.contains f14 "512K" && Thelp.contains f14 "legend")

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hnlpu_infra"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "peek/pop" `Quick test_heap_peek_pop;
        ] );
      qsuite "heap properties" [ prop_heap_sorts; prop_heap_interleaved ];
      ( "chart",
        [
          Alcotest.test_case "bar" `Quick test_bar_renders;
          Alcotest.test_case "log scale" `Quick test_bar_log_scale;
          Alcotest.test_case "stacked width" `Quick test_stacked_width_exact;
          Alcotest.test_case "stacked validation" `Quick test_stacked_validation;
          Alcotest.test_case "sparkline" `Quick test_sparkline;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_roundtrip_structure;
          Alcotest.test_case "experiments export" `Quick test_experiments_export_csv;
        ] );
      ( "json-calibration",
        [
          Alcotest.test_case "to_json escaping" `Quick test_table_to_json;
          Alcotest.test_case "export json" `Quick test_experiments_export_json;
          Alcotest.test_case "calibration registry" `Quick test_calibration_registry;
        ] );
      ( "figure-charts",
        [ Alcotest.test_case "render" `Quick test_figure_charts_render ] );
    ]
