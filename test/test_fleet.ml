(* Tests for the GPU-equivalence scaling sweep and the multi-node fleet
   simulation backing the high-volume scenario. *)

open Hnlpu

let config = Config.gpt_oss_120b

(* --- Scaling / GPU equivalence ------------------------------------------- *)

let test_scaling_batch1_is_table2 () =
  match Scaling.sweep ~batches:[ 1 ] () with
  | [ p ] ->
    (* 249,960 / 45 = the Table 2 headline. *)
    Alcotest.(check bool)
      (Printf.sprintf "%.0f GPUs" p.Scaling.gpus_needed)
      true
      (Approx.within_pct 1.0 ~expected:5555.0 ~actual:p.Scaling.gpus_needed)
  | _ -> Alcotest.fail "one point expected"

let test_scaling_batching_shrinks_cluster () =
  let pts = Scaling.sweep () in
  let needed b =
    (List.find (fun p -> p.Scaling.gpu_batch = b) pts).Scaling.gpus_needed
  in
  Alcotest.(check bool) "bigger batches, fewer GPUs" true
    (needed 256 < needed 50 && needed 50 < needed 1);
  (* Even a throughput-tuned cluster still needs dozens of GPUs. *)
  Alcotest.(check bool)
    (Printf.sprintf "batch-256 still needs %.0f GPUs (dozens)" (needed 256))
    true
    (needed 256 > 50.0)

let test_scaling_paper_equivalence () =
  let p = Scaling.paper_equivalence in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f GPUs ~ 2000" p.Scaling.gpus_needed)
    true
    (Approx.within_pct 10.0 ~expected:2000.0 ~actual:p.Scaling.gpus_needed);
  (* The power argument behind the OpEx advantage. *)
  Alcotest.(check bool)
    (Printf.sprintf "power ratio %.0fx" p.Scaling.power_ratio)
    true
    (p.Scaling.power_ratio > 200.0)

let test_scaling_table_renders () =
  let s = Table.render (Scaling.to_table (Scaling.sweep ())) in
  Alcotest.(check bool) "renders" true (Thelp.contains s "GPUs to match")

(* --- Multi-node fleet --------------------------------------------------------- *)

let saturating_workload seed =
  (* Big enough that pipeline fill/drain and decode tails amortize. *)
  Scheduler.workload (Rng.create seed) ~n:1200 ~rate_per_s:1.0e9 ~mean_prefill:150
    ~mean_decode:2

let test_fleet_conservation () =
  let reqs = saturating_workload 1 in
  let r = Multi_node.simulate ~nodes:4 config reqs in
  let expected =
    List.fold_left
      (fun a q -> a + q.Scheduler.prefill_tokens + q.Scheduler.decode_tokens)
      0 reqs
  in
  Alcotest.(check int) "tokens conserved across nodes" expected r.Multi_node.total_tokens;
  Alcotest.(check int) "all nodes reported" 4 (List.length r.Multi_node.per_node)

let test_fleet_scales_nearly_linearly () =
  let reqs = saturating_workload 2 in
  let e = Multi_node.scaling_efficiency ~nodes:4 config reqs in
  Alcotest.(check bool) (Printf.sprintf "efficiency %.2f" e) true (e > 0.8 && e <= 1.05)

let test_fleet_least_loaded_balances () =
  (* Heavy-tailed request sizes: least-loaded keeps imbalance low. *)
  let rng = Rng.create 3 in
  let reqs =
    List.init 200 (fun i ->
        {
          Scheduler.arrival_s = 0.0001 *. float_of_int i;
          prefill_tokens = 1 + Rng.int rng (if i mod 17 = 0 then 2000 else 40);
          decode_tokens = 1 + Rng.int rng 8;
        })
  in
  let rr = Multi_node.simulate ~policy:Multi_node.Round_robin ~nodes:4 config reqs in
  let ll = Multi_node.simulate ~policy:Multi_node.Least_loaded ~nodes:4 config reqs in
  Alcotest.(check bool)
    (Printf.sprintf "LL %.2f <= RR %.2f imbalance" ll.Multi_node.imbalance
       rr.Multi_node.imbalance)
    true
    (ll.Multi_node.imbalance <= rr.Multi_node.imbalance +. 1e-9);
  Alcotest.(check bool) "LL close to even" true (ll.Multi_node.imbalance < 1.3)

let test_fleet_empty_node_ok () =
  (* More nodes than requests: the idle nodes must report zeros. *)
  let reqs =
    [ { Scheduler.arrival_s = 0.0; prefill_tokens = 3; decode_tokens = 2 } ]
  in
  let r = Multi_node.simulate ~nodes:3 config reqs in
  Alcotest.(check int) "five tokens" 5 r.Multi_node.total_tokens;
  let idle = List.filter (fun s -> s.Multi_node.tokens = 0) r.Multi_node.per_node in
  Alcotest.(check int) "two idle nodes" 2 (List.length idle)

let test_fleet_validation () =
  Alcotest.(check bool) "zero nodes rejected" true
    (try
       ignore (Multi_node.simulate ~nodes:0 config []);
       false
     with Invalid_argument _ -> true)

(* --- Fleet: sharded cluster simulator ------------------------------------ *)

let fleet_config nodes shards =
  { (Fleet.config_of_model ~nodes ~shards config) with Fleet.idle_after_s = 0.05 }

let near_capacity cfg spec frac = Fleet.capacity_req_per_s cfg spec *. frac

let chat_spec cfg frac =
  Arrivals.with_mean_rate (Arrivals.chat ~rate_per_s:1.0) (near_capacity cfg (Arrivals.chat ~rate_per_s:1.0) frac)

let chaos cfg =
  (* Fail a quarter of the fleet mid-trace, recover shortly after. *)
  Fleet.fail_recover_schedule ~nodes:cfg.Fleet.nodes ~fraction:0.25 ~at_s:0.2
    ~recover_after_s:0.3

let test_fleet_run_deterministic_across_domains () =
  let cfg = fleet_config 64 4 in
  let spec = chat_spec cfg 0.8 in
  let run domains =
    let obs = Obs.Sink.create ~events:false () in
    let r =
      Fleet.run ~domains ~obs ~node_events:(chaos cfg) ~policy:Fleet.Least_loaded
        ~requests:20_000 ~seed:7 cfg spec
    in
    (Marshal.to_string r [], Obs.Metrics.to_json (Obs.Sink.metrics obs))
  in
  let ref_r, ref_m = run 1 in
  List.iter
    (fun j ->
      let r, m = run j in
      Alcotest.(check bool)
        (Printf.sprintf "result bytes identical at j=%d" j)
        true (String.equal ref_r r);
      Alcotest.(check string) (Printf.sprintf "metrics identical at j=%d" j) ref_m m)
    [ 2; 4; 8 ]

let test_fleet_policies_deterministic () =
  (* Every policy, not just LL: same bytes at j=1 and j=4, with chaos. *)
  let cfg = fleet_config 48 3 in
  let spec =
    { (chat_spec cfg 0.7) with
      Arrivals.decode = Arrivals.Pareto { alpha = 1.4; xmin = 32.0; cap = 8192 } }
  in
  List.iter
    (fun policy ->
      let run domains =
        Marshal.to_string
          (Fleet.run ~domains ~node_events:(chaos cfg) ~policy ~requests:10_000
             ~seed:11 cfg spec)
          []
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s identical j=1 vs j=4" (Fleet.policy_name policy))
        true
        (String.equal (run 1) (run 4)))
    [ Fleet.Round_robin; Fleet.Least_loaded; Fleet.Session_affinity; Fleet.Power_aware ]

let test_fleet_conservation_and_accounting () =
  let cfg = fleet_config 32 4 in
  let spec = chat_spec cfg 0.8 in
  let r =
    Fleet.run ~domains:2 ~node_events:(chaos cfg) ~policy:Fleet.Least_loaded
      ~requests:15_000 ~seed:3 cfg spec
  in
  Alcotest.(check int) "dispatched + dropped = requests" 15_000
    (r.Fleet.dispatched + r.Fleet.dropped);
  let node_sum = Array.fold_left ( +. ) 0.0 r.Fleet.per_node_tokens in
  Alcotest.(check bool)
    (Printf.sprintf "per-node ledger %.1f ~ total %.1f" node_sum r.Fleet.total_tokens)
    true
    (abs_float (node_sum -. r.Fleet.total_tokens) /. r.Fleet.total_tokens < 1e-9);
  Alcotest.(check int) "per-node requests sum" r.Fleet.dispatched
    (Array.fold_left ( + ) 0 r.Fleet.per_node_requests);
  Alcotest.(check bool) "failures actually moved work" true
    (r.Fleet.redispatched_tokens > 0.0);
  Alcotest.(check bool) "utilization sane" true
    (r.Fleet.mean_utilization > 0.0 && r.Fleet.mean_utilization <= 1.0)

let test_fleet_ll_beats_rr_on_heavy_tail () =
  let cfg = fleet_config 32 4 in
  let spec =
    { (chat_spec cfg 0.6) with
      Arrivals.decode = Arrivals.Pareto { alpha = 1.3; xmin = 16.0; cap = 65536 } }
  in
  let run policy =
    Fleet.run ~domains:2 ~policy ~requests:20_000 ~seed:5 cfg spec
  in
  let rr = run Fleet.Round_robin and ll = run Fleet.Least_loaded in
  Alcotest.(check bool)
    (Printf.sprintf "LL %.3f <= RR %.3f" ll.Fleet.imbalance rr.Fleet.imbalance)
    true
    (ll.Fleet.imbalance <= rr.Fleet.imbalance +. 1e-9)

let test_fleet_session_affinity_pins_users () =
  let cfg = fleet_config 16 2 in
  let spec = { (chat_spec cfg 0.2) with Arrivals.users = 1 } in
  let r =
    Fleet.run ~domains:2 ~policy:Fleet.Session_affinity ~requests:4_000 ~seed:9
      cfg spec
  in
  (* One user = one home node: all load on a single node. *)
  let loaded =
    Array.fold_left (fun a t -> if t > 0.0 then a + 1 else a) 0 r.Fleet.per_node_tokens
  in
  Alcotest.(check int) "single hot node" 1 loaded;
  Alcotest.(check bool)
    (Printf.sprintf "imbalance %.1f ~ nodes" r.Fleet.imbalance)
    true
    (r.Fleet.imbalance > 15.9)

let test_fleet_power_cap_respected () =
  let base = fleet_config 32 2 in
  let cfg =
    { base with Fleet.rack_size = 8; rack_power_cap = 3; idle_after_s = 1e9 }
  in
  let spec = chat_spec cfg 0.5 in
  let run policy = Fleet.run ~domains:2 ~policy ~requests:8_000 ~seed:13 cfg spec in
  let ll = run Fleet.Least_loaded and pa = run Fleet.Power_aware in
  Alcotest.(check bool)
    (Printf.sprintf "LL ignores the cap (peak %d)" ll.Fleet.peak_rack_hot)
    true
    (ll.Fleet.peak_rack_hot > 3);
  Alcotest.(check bool)
    (Printf.sprintf "PA peak %d <= cap 3 (overrides %d)" pa.Fleet.peak_rack_hot
       pa.Fleet.power_cap_overrides)
    true
    (pa.Fleet.power_cap_overrides > 0 || pa.Fleet.peak_rack_hot <= 3)

let test_fleet_total_outage_drops () =
  let cfg = fleet_config 8 2 in
  let spec = chat_spec cfg 0.5 in
  let events =
    Fleet.fail_recover_schedule ~nodes:8 ~fraction:1.0 ~at_s:0.1
      ~recover_after_s:1e6
  in
  let r =
    Fleet.run ~domains:1 ~node_events:events ~policy:Fleet.Least_loaded
      ~requests:2_000 ~seed:17 cfg spec
  in
  Alcotest.(check bool) "outage drops requests" true (r.Fleet.dropped > 0);
  Alcotest.(check int) "accounting still closes" 2_000
    (r.Fleet.dispatched + r.Fleet.dropped)

let test_fleet_dispatch_matches_reference_scan () =
  (* The indexed heap must reproduce the historical first-minimum scan
     choice for choice. *)
  let rng = Rng.create 23 in
  let weights = Array.init 500 (fun _ -> float (1 + Rng.int rng 2000)) in
  let nodes = 7 in
  let heap_targets = Fleet.dispatch ~policy:Fleet.Least_loaded ~nodes weights in
  let load = Array.make nodes 0.0 in
  let scan_targets =
    Array.map
      (fun w ->
        let best = ref 0 in
        for n = 1 to nodes - 1 do
          if load.(n) < load.(!best) then best := n
        done;
        load.(!best) <- load.(!best) +. w;
        !best)
      weights
  in
  Alcotest.(check bool) "identical choice sequence" true (heap_targets = scan_targets)

let test_fleet_sweep_frontier () =
  let cfg = fleet_config 16 2 in
  let spec = Arrivals.chat ~rate_per_s:1.0 in
  let capacity = Fleet.capacity_req_per_s cfg spec in
  let pts =
    Fleet.sweep ~domains:2 ~policies:[ Fleet.Least_loaded ]
      ~rates:[ capacity *. 0.5; capacity *. 3.0 ]
      ~requests:6_000 ~seed:21
      (* Short trace, so the overload queue only reaches ~0.2 s; pin the
         objective between the two regimes (30x above the uncongested
         point, 3x below the congested one). *)
      { Fleet.max_ttft_p99_s = 0.05; max_e2e_p99_s = 30.0 }
      cfg spec
  in
  match pts with
  | [ low; high ] ->
      Alcotest.(check bool)
        (Printf.sprintf "half capacity meets SLO (ttft p99 %.4f)" low.Fleet.ttft_p99_s)
        true low.Fleet.meets_slo;
      Alcotest.(check bool)
        (Printf.sprintf "3x capacity violates SLO (ttft p99 %.4f)" high.Fleet.ttft_p99_s)
        true (not high.Fleet.meets_slo);
      Alcotest.(check bool) "queueing grows with load" true
        (high.Fleet.ttft_p99_s > low.Fleet.ttft_p99_s)
  | _ -> Alcotest.fail "two frontier points expected"

let test_fleet_run_validation () =
  let cfg = fleet_config 8 2 in
  let spec = Arrivals.chat ~rate_per_s:10.0 in
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "shards > nodes" true
    (rejects (fun () ->
         Fleet.run ~policy:Fleet.Least_loaded ~requests:10 ~seed:1
           { cfg with Fleet.shards = 9 } spec));
  Alcotest.(check bool) "unsorted events" true
    (rejects (fun () ->
         Fleet.run
           ~node_events:
             [|
               { Fleet.at_s = 1.0; node = 0; kind = Fleet.Fail };
               { Fleet.at_s = 0.5; node = 1; kind = Fleet.Fail };
             |]
           ~policy:Fleet.Least_loaded ~requests:10 ~seed:1 cfg spec));
  Alcotest.(check bool) "static dispatch rejects trace-driven policy" true
    (rejects (fun () -> Fleet.dispatch ~policy:Fleet.Power_aware ~nodes:4 [| 1.0 |]))

let () =
  Alcotest.run "hnlpu_fleet"
    [
      ( "gpu-equivalence",
        [
          Alcotest.test_case "batch 1 = Table 2" `Quick test_scaling_batch1_is_table2;
          Alcotest.test_case "batching shrinks cluster" `Quick test_scaling_batching_shrinks_cluster;
          Alcotest.test_case "paper equivalence" `Quick test_scaling_paper_equivalence;
          Alcotest.test_case "table" `Quick test_scaling_table_renders;
        ] );
      ( "multi-node",
        [
          Alcotest.test_case "conservation" `Quick test_fleet_conservation;
          Alcotest.test_case "near-linear scaling" `Quick test_fleet_scales_nearly_linearly;
          Alcotest.test_case "least-loaded balances" `Quick test_fleet_least_loaded_balances;
          Alcotest.test_case "idle nodes" `Quick test_fleet_empty_node_ok;
          Alcotest.test_case "validation" `Quick test_fleet_validation;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "deterministic across -j with chaos" `Quick
            test_fleet_run_deterministic_across_domains;
          Alcotest.test_case "all policies deterministic" `Quick
            test_fleet_policies_deterministic;
          Alcotest.test_case "conservation and accounting" `Quick
            test_fleet_conservation_and_accounting;
          Alcotest.test_case "LL <= RR imbalance on heavy tail" `Quick
            test_fleet_ll_beats_rr_on_heavy_tail;
          Alcotest.test_case "session affinity pins users" `Quick
            test_fleet_session_affinity_pins_users;
          Alcotest.test_case "rack power cap" `Quick test_fleet_power_cap_respected;
          Alcotest.test_case "total outage drops" `Quick test_fleet_total_outage_drops;
          Alcotest.test_case "heap dispatch = reference scan" `Quick
            test_fleet_dispatch_matches_reference_scan;
          Alcotest.test_case "SLO capacity frontier" `Quick test_fleet_sweep_frontier;
          Alcotest.test_case "fleet validation" `Quick test_fleet_run_validation;
        ] );
    ]
