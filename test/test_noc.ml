open Hnlpu_noc
open Hnlpu_util

(* --- Topology ----------------------------------------------------------- *)

let test_grid_shape () =
  Alcotest.(check int) "16 chips" 16 Topology.chips;
  Alcotest.(check int) "4 rows" 4 Topology.rows;
  Alcotest.(check int) "chip (2,3) id" 11 (Topology.chip_at ~row:2 ~col:3);
  Alcotest.(check int) "row of 11" 2 (Topology.row_of 11);
  Alcotest.(check int) "col of 11" 3 (Topology.col_of 11)

let test_groups () =
  Alcotest.(check (list int)) "row 1" [ 4; 5; 6; 7 ] (Topology.row_group 1);
  Alcotest.(check (list int)) "col 2" [ 2; 6; 10; 14 ] (Topology.col_group 2);
  Alcotest.(check (list int)) "row peers of 5" [ 4; 6; 7 ] (Topology.row_peers 5);
  Alcotest.(check (list int)) "col peers of 5" [ 1; 9; 13 ] (Topology.col_peers 5)

let test_connectivity () =
  (* Row-column fully-connected: 48 links, degree 6. *)
  Alcotest.(check int) "48 links" 48 (List.length (Topology.links ()));
  List.iter
    (fun c -> Alcotest.(check int) "degree 6" 6 (Topology.degree c))
    Topology.all_chips;
  Alcotest.(check bool) "same row connected" true (Topology.connected 4 7);
  Alcotest.(check bool) "same col connected" true (Topology.connected 2 14);
  Alcotest.(check bool) "diagonal not connected" false (Topology.connected 0 5);
  Alcotest.(check bool) "self not connected" false (Topology.connected 3 3)

let test_kv_owner_striping () =
  (* Position l lives on chip (l mod 4) of the column. *)
  Alcotest.(check int) "pos 0 col 2" 2 (Topology.kv_owner ~seq_pos:0 ~col:2);
  Alcotest.(check int) "pos 5 col 2" 6 (Topology.kv_owner ~seq_pos:5 ~col:2);
  Alcotest.(check int) "pos 7 col 0" 12 (Topology.kv_owner ~seq_pos:7 ~col:0)

let prop_links_are_row_or_col =
  QCheck.Test.make ~name:"every link joins a row or column pair" ~count:1
    QCheck.unit
    (fun () ->
      List.for_all
        (fun (a, b) ->
          Topology.row_of a = Topology.row_of b || Topology.col_of a = Topology.col_of b)
        (Topology.links ()))

(* --- Link ----------------------------------------------------------------- *)

let test_link_latency_components () =
  let l = Link.cxl3 in
  let t0 = Link.transfer_time_s l ~bytes:0 in
  let t2k = Link.transfer_time_s l ~bytes:2048 in
  Alcotest.(check bool) "zero payload still pays latency" true (t0 > 0.0);
  Alcotest.(check bool) "payload adds serialization" true
    (Approx.close ~rel:1e-6 (t2k -. t0) (2048.0 /. 128.0e9))

let test_link_sub_100ns_phy () =
  (* Paper: CXL 3.0 "<100 ns" PHY latency. *)
  Alcotest.(check bool) "phy < 100ns" true (Link.cxl3.Link.phy_latency_s < 100e-9)

let test_link_energy () =
  let e = Link.transfer_energy_j Link.cxl3 ~bytes:1000 in
  Alcotest.(check bool) "8 pJ/bit" true (Approx.close ~rel:1e-9 e (8000.0 *. 8.0e-12))

let test_link_energy_rejects_negative () =
  (* Regression: a negative payload used to yield a negative energy and
     silently corrupt accumulated totals. *)
  Alcotest.(check bool) "negative payload rejected" true
    (try
       ignore (Link.transfer_energy_j Link.cxl3 ~bytes:(-1));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check (float 0.0)) "zero payload is free" 0.0
    (Link.transfer_energy_j Link.cxl3 ~bytes:0)

(* --- Collective: function -------------------------------------------------- *)

let vals group xs = List.map2 (fun c v -> (c, v)) group xs

let test_sum_and_all_reduce () =
  let group = Topology.col_group 1 in
  let v = vals group [ [| 1.0; 2.0 |]; [| 10.0; 20.0 |]; [| 100.0; 200.0 |]; [| 1000.0; 2000.0 |] ] in
  Alcotest.(check (array (float 1e-12))) "sum" [| 1111.0; 2222.0 |] (Collective.sum v);
  let reduced = Collective.all_reduce v in
  List.iter
    (fun (_, x) ->
      Alcotest.(check (array (float 1e-12))) "everyone has the sum" [| 1111.0; 2222.0 |] x)
    reduced

let test_gather_scatter_roundtrip () =
  let group = Topology.row_group 0 in
  let whole = Array.init 8 float_of_int in
  let scattered = Collective.scatter ~chips:group whole in
  Alcotest.(check int) "four shards" 4 (List.length scattered);
  Alcotest.(check (array (float 0.0))) "gather inverts scatter" whole
    (Collective.gather scattered)

let test_all_gather () =
  let group = Topology.row_group 2 in
  let v = vals group [ [| 1.0 |]; [| 2.0 |]; [| 3.0 |]; [| 4.0 |] ] in
  List.iter
    (fun (_, x) ->
      Alcotest.(check (array (float 0.0))) "concatenated" [| 1.0; 2.0; 3.0; 4.0 |] x)
    (Collective.all_gather v)

let test_scatter_validation () =
  Alcotest.(check bool) "uneven scatter rejected" true
    (try
       ignore (Collective.scatter ~chips:(Topology.row_group 0) (Array.make 7 0.0));
       false
     with Invalid_argument _ -> true)

let test_ragged_rejected () =
  Alcotest.(check bool) "ragged group rejected" true
    (try
       ignore (Collective.sum [ (0, [| 1.0 |]); (1, [| 1.0; 2.0 |]) ]);
       false
     with Invalid_argument _ -> true)

let prop_all_reduce_order_invariant =
  QCheck.Test.make ~name:"all-reduce independent of listing order" ~count:100
    QCheck.(list_of_size (Gen.return 4) (list_of_size (Gen.return 3) (float_range (-10.0) 10.0)))
    (fun xs ->
      let group = Topology.col_group 0 in
      let v = List.map2 (fun c l -> (c, Array.of_list l)) group xs in
      let a = Collective.sum v in
      let b = Collective.sum (List.rev v) in
      Hnlpu_tensor.Vec.max_abs_diff a b < 1e-9)

(* --- Collective: timing ------------------------------------------------------ *)

let test_timing_monotone_in_group () =
  let t2 = Collective.all_reduce_time ~group:2 ~bytes:1024 () in
  let t4 = Collective.all_reduce_time ~group:4 ~bytes:1024 () in
  Alcotest.(check bool) "bigger group slower" true (t4 > t2)

let test_all_reduce_is_reduce_plus_broadcast () =
  let r = Collective.reduce_time ~group:4 ~bytes:512 () in
  let b = Collective.broadcast_time ~group:4 ~bytes:512 () in
  let ar = Collective.all_reduce_time ~group:4 ~bytes:512 () in
  Alcotest.(check (float 1e-15)) "composition" (r +. b) ar

let test_hierarchical_all_chip () =
  let col = Collective.all_reduce_time ~group:4 ~bytes:1024 () in
  let whole = Collective.all_chip_all_reduce_time ~bytes:1024 () in
  Alcotest.(check (float 1e-15)) "two-level" (2.0 *. col) whole

let test_transfer_counts () =
  Alcotest.(check int) "all-reduce of 4 = 6 transfers" 6
    (Collective.transfers_of_all_reduce ~group:4)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hnlpu_noc"
    [
      ( "topology",
        [
          Alcotest.test_case "grid shape" `Quick test_grid_shape;
          Alcotest.test_case "groups" `Quick test_groups;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "kv striping" `Quick test_kv_owner_striping;
        ] );
      qsuite "topology properties" [ prop_links_are_row_or_col ];
      ( "link",
        [
          Alcotest.test_case "latency components" `Quick test_link_latency_components;
          Alcotest.test_case "sub-100ns phy" `Quick test_link_sub_100ns_phy;
          Alcotest.test_case "energy" `Quick test_link_energy;
          Alcotest.test_case "energy rejects negative" `Quick
            test_link_energy_rejects_negative;
        ] );
      ( "collective-function",
        [
          Alcotest.test_case "sum/all-reduce" `Quick test_sum_and_all_reduce;
          Alcotest.test_case "gather/scatter" `Quick test_gather_scatter_roundtrip;
          Alcotest.test_case "all-gather" `Quick test_all_gather;
          Alcotest.test_case "scatter validation" `Quick test_scatter_validation;
          Alcotest.test_case "ragged rejected" `Quick test_ragged_rejected;
        ] );
      qsuite "collective properties" [ prop_all_reduce_order_invariant ];
      ( "collective-timing",
        [
          Alcotest.test_case "monotone in group" `Quick test_timing_monotone_in_group;
          Alcotest.test_case "reduce + broadcast" `Quick test_all_reduce_is_reduce_plus_broadcast;
          Alcotest.test_case "hierarchical 16-chip" `Quick test_hierarchical_all_chip;
          Alcotest.test_case "transfer counts" `Quick test_transfer_counts;
        ] );
    ]
