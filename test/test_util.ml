open Hnlpu_util

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng ------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xa = Rng.next_int64 a and xb = Rng.next_int64 b in
  Alcotest.(check bool) "streams differ" true (xa <> xb)

let test_rng_int_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 10_000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_rng_float_bounds () =
  let r = Rng.create 2 in
  for _ = 1 to 10_000 do
    let x = Rng.float r 3.0 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 3.0)
  done

let test_rng_gaussian_moments () =
  let r = Rng.create 3 in
  let s = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add s (Rng.gaussian r)
  done;
  Alcotest.(check bool) "mean near 0" true (Float.abs (Stats.mean s) < 0.02);
  Alcotest.(check bool) "stddev near 1" true (Float.abs (Stats.stddev s -. 1.0) < 0.02)

let test_rng_exponential_mean () =
  let r = Rng.create 4 in
  let s = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add s (Rng.exponential r 2.0)
  done;
  Alcotest.(check bool) "mean near 1/rate" true (Float.abs (Stats.mean s -. 0.5) < 0.02)

let test_rng_shuffle_permutation () =
  let r = Rng.create 5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* --- Stats ----------------------------------------------------------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  check_float "mean" 2.5 (Stats.mean s);
  check_float "variance" (5.0 /. 3.0) (Stats.variance s);
  check_float "min" 1.0 (Stats.min s);
  check_float "max" 4.0 (Stats.max s);
  check_float "total" 10.0 (Stats.total s)

let test_stats_percentile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "median" 3.0 (Stats.percentile xs 0.5);
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p100" 5.0 (Stats.percentile xs 1.0);
  check_float "p25" 2.0 (Stats.percentile xs 0.25)

let test_stats_histogram () =
  let xs = [| 0.0; 0.5; 1.0; 1.5; 2.0 |] in
  let h = Stats.histogram xs ~bins:2 in
  Alcotest.(check int) "bins" 2 (Array.length h);
  Alcotest.(check int) "total count" 5 (Array.fold_left (fun a (_, c) -> a + c) 0 h)

let test_stats_empty () =
  Alcotest.(check bool) "percentile of empty is nan" true
    (Float.is_nan (Stats.percentile [||] 0.5));
  Alcotest.(check int) "histogram of empty is empty" 0
    (Array.length (Stats.histogram [||] ~bins:4))

let test_stats_percentile_domain () =
  let raises p =
    match Stats.percentile [| 1.0 |] p with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "p < 0 raises" true (raises (-0.1));
  Alcotest.(check bool) "p > 1 raises" true (raises 1.5);
  Alcotest.(check bool) "nan p raises" true (raises nan);
  (* The domain check fires even when there are no samples. *)
  Alcotest.(check bool) "empty + bad p still raises" true
    (match Stats.percentile [||] 2.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_stats_percentile_edges () =
  (* A singleton returns its element for every p. *)
  List.iter
    (fun p ->
      check_float
        (Printf.sprintf "singleton at p=%g" p)
        42.0
        (Stats.percentile [| 42.0 |] p))
    [ 0.0; 0.25; 0.5; 0.95; 1.0 ];
  (* nan samples poison rank interpolation silently, so they are
     rejected up front. *)
  let raises xs =
    match Stats.percentile xs 0.5 with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "nan-only sample raises" true (raises [| nan |]);
  Alcotest.(check bool) "nan among samples raises" true
    (raises [| 1.0; nan; 3.0 |]);
  Alcotest.(check bool) "infinities are still accepted" true
    (not (raises [| 1.0; infinity |]))

(* --- Units ----------------------------------------------------------- *)

let test_units_si () =
  Alcotest.(check string) "giga" "2.50G" (Units.si 2.5e9);
  Alcotest.(check string) "micro" "4.00u" (Units.si 4.0e-6);
  Alcotest.(check string) "unit" "36.00" (Units.si 36.0)

let test_units_dollars () =
  Alcotest.(check string) "millions" "$ 27.69M" (Units.dollars 27.69e6);
  Alcotest.(check string) "billions" "$ 6.00B" (Units.dollars 6.0e9);
  Alcotest.(check string) "plain" "$ 629" (Units.dollars 629.0)

let test_units_round_sig () =
  check_float "4 sig" 59.46 (Units.round_sig 4 59.4622);
  check_float "4 sig big" 123.5 (Units.round_sig 4 123.456);
  check_float "zero" 0.0 (Units.round_sig 4 0.0)

let test_units_dollars_m () =
  Alcotest.(check string) "paper style" "59.46M" (Units.dollars_m 59.4622e6);
  Alcotest.(check string) "paper style 2" "123.5M" (Units.dollars_m 123.46e6)

let test_units_group_thousands () =
  Alcotest.(check string) "group" "249,960" (Units.group_thousands 249960);
  Alcotest.(check string) "small" "45" (Units.group_thousands 45);
  Alcotest.(check string) "negative" "-1,234" (Units.group_thousands (-1234))

(* --- Table ----------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "y"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains row" true
    (String.length s > 0
    && Thelp.contains s "22"
    && Thelp.contains s "x")

let test_table_arity () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: expected 2 cells, got 1")
    (fun () -> Table.add_row t [ "x" ])

(* --- Approx ---------------------------------------------------------- *)

let test_approx () =
  Alcotest.(check bool) "close rel" true (Approx.close ~rel:0.01 100.0 100.5);
  Alcotest.(check bool) "not close" false (Approx.close ~rel:0.001 100.0 100.5);
  Alcotest.(check bool) "within pct" true
    (Approx.within_pct 1.0 ~expected:100.0 ~actual:100.9);
  check_float "rel error" 0.01 (Approx.rel_error 100.0 101.0)

let () =
  Alcotest.run "hnlpu_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "percentile domain" `Quick test_stats_percentile_domain;
          Alcotest.test_case "percentile edges" `Quick test_stats_percentile_edges;
        ] );
      ( "units",
        [
          Alcotest.test_case "si" `Quick test_units_si;
          Alcotest.test_case "dollars" `Quick test_units_dollars;
          Alcotest.test_case "round_sig" `Quick test_units_round_sig;
          Alcotest.test_case "dollars_m" `Quick test_units_dollars_m;
          Alcotest.test_case "group thousands" `Quick test_units_group_thousands;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
        ] );
      ("approx", [ Alcotest.test_case "helpers" `Quick test_approx ]);
    ]
