(* Tests for the source-level lint engine (Hnlpu_lint):

   - every rule family catches its seeded-broken fixture and the clean
     fixture stays clean (the self-test CI runs);
   - the fixture set covers exactly the configured rule families — a new
     rule without a fixture, or a stale fixture, fails here;
   - output is deterministic: two runs serialize byte-identically;
   - the baseline round-trips through its textual format, downgrades
     matched findings to Info with the reason attached, and reports
     stale entries instead of silently skipping them. *)

module D = Hnlpu_verify.Diagnostic
module Lint = Hnlpu_lint.Lint
module Lint_config = Hnlpu_lint.Lint_config
module Baseline = Hnlpu_lint.Baseline

(* The fixture library is linked (never called) so dune compiles it —
   and thereby emits the .cmt files this suite lints — before the suite
   runs. *)
let _force_fixture_build = Lint_fixtures.Fixture_clean.clamp 0 1 0

(* Tests run from [_build/default/test]; direct invocation from the
   workspace root also works. *)
let fixture_dirs () =
  match List.filter Sys.file_exists ("lint_fixtures" :: Lint.default_fixture_dirs) with
  | [] -> Alcotest.fail "lint fixtures not found — build with `dune build @all'"
  | dirs -> dirs

let run_fixtures () = Lint.run ~dirs:(fixture_dirs ()) ()

(* --- Fixture coverage ----------------------------------------------------- *)

let test_fixtures_cover_rules () =
  let expected = List.sort String.compare (List.map (fun (r, _, _) -> r) Lint.fixture_expectations) in
  let rules = List.sort String.compare Lint_config.rules in
  Alcotest.(check (list string))
    "one seeded-broken fixture per rule family" rules expected

let test_self_test_catches_all () =
  let caught, clean, ds = Lint.self_test ~dirs:(fixture_dirs ()) () in
  List.iter
    (fun (rule, hit) ->
      Alcotest.(check bool) (rule ^ " fires on its fixture") true hit)
    caught;
  Alcotest.(check bool) "clean fixture is clean" true clean;
  Alcotest.(check bool) "fixtures produce findings" true (ds <> [])

let test_expected_severities () =
  let ds = run_fixtures () in
  List.iter
    (fun (rule, fixture, min_sev) ->
      let hit =
        List.exists
          (fun d ->
            String.equal d.D.rule rule
            && D.rank d.D.severity >= D.rank min_sev
            && List.exists (String.equal fixture)
                 (String.split_on_char '.' d.D.subject))
          ds
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s >= %s on %s" rule (D.severity_label min_sev) fixture)
        true hit)
    Lint.fixture_expectations

let test_clean_module_zero_findings () =
  let ds = run_fixtures () in
  let dirty =
    List.filter
      (fun d ->
        List.exists (String.equal "Fixture_clean")
          (String.split_on_char '.' d.D.subject))
      ds
  in
  Alcotest.(check int) "no findings on Fixture_clean" 0 (List.length dirty)

(* --- Determinism ----------------------------------------------------------- *)

let test_json_byte_identical () =
  let a = D.to_json (run_fixtures ()) in
  let b = D.to_json (run_fixtures ()) in
  Alcotest.(check string) "two runs serialize byte-identically" a b

(* --- Baseline -------------------------------------------------------------- *)

let sample_entries =
  [
    Baseline.entry ~rule:"ALLOC-HOT" ~subject:"M.f" ~reason:"amortized growth";
    Baseline.entry ~rule:"DET-SRC" ~subject:"M.g" ~reason:"sorted downstream";
  ]

let test_baseline_round_trip () =
  let parsed = Baseline.of_string (Baseline.to_string sample_entries) in
  Alcotest.(check int) "entry count survives" 2 (List.length parsed);
  List.iter2
    (fun (a : Baseline.entry) (b : Baseline.entry) ->
      Alcotest.(check string) "rule" a.Baseline.rule b.Baseline.rule;
      Alcotest.(check string) "subject" a.Baseline.subject b.Baseline.subject;
      Alcotest.(check string) "reason" a.Baseline.reason b.Baseline.reason)
    sample_entries parsed

let test_baseline_rejects_empty_reason () =
  Alcotest.check_raises "empty reason is rejected"
    (Failure
       "baseline line 1: empty reason — every accepted finding must say why")
    (fun () -> ignore (Baseline.of_string "ALLOC-HOT\tM.f\t \n"))

let test_baseline_apply_downgrades_and_flags_stale () =
  let ds =
    [
      D.error ~rule:"ALLOC-HOT" ~subject:"M.f" "tuple allocation";
      D.error ~rule:"ALLOC-HOT" ~subject:"M.other" "record allocation";
    ]
  in
  let stale =
    Baseline.entry ~rule:"EXN-SWALLOW" ~subject:"M.gone" ~reason:"was removed"
  in
  let out = D.normalize (Baseline.apply (sample_entries @ [ stale ]) ds) in
  let find subject = List.find (fun d -> String.equal d.D.subject subject) out in
  let matched = find "M.f" in
  Alcotest.(check string) "matched finding downgraded" "INFO"
    (D.severity_label matched.D.severity);
  Alcotest.(check bool) "reason is attached" true
    (Thelp.contains matched.D.message "amortized growth");
  Alcotest.(check string) "unmatched finding keeps severity" "ERROR"
    (D.severity_label (find "M.other").D.severity);
  let lint_baseline = List.filter (fun d -> d.D.rule = "LINT-BASELINE") out in
  Alcotest.(check int) "stale entries reported" 2 (List.length lint_baseline);
  Alcotest.(check bool) "stale subject named" true
    (List.exists (fun d -> String.equal d.D.subject "M.gone") lint_baseline)

let test_repo_baseline_matches_format () =
  (* The committed baseline (when visible from the test's cwd) parses and
     every entry carries a real reason. *)
  let candidates = [ "../../../lint.baseline"; "lint.baseline" ] in
  match List.find_opt Sys.file_exists candidates with
  | None -> ()
  | Some path ->
    let entries = Baseline.load path in
    Alcotest.(check bool) "committed baseline is non-empty" true (entries <> []);
    List.iter
      (fun (e : Baseline.entry) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s %s reason is justified" e.Baseline.rule
             e.Baseline.subject)
          false
          (Thelp.contains e.Baseline.reason "TODO"))
      entries

let () =
  Alcotest.run "hnlpu lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "fixtures cover rule families" `Quick
            test_fixtures_cover_rules;
          Alcotest.test_case "self-test catches all families" `Quick
            test_self_test_catches_all;
          Alcotest.test_case "expected severities" `Quick test_expected_severities;
          Alcotest.test_case "clean module stays clean" `Quick
            test_clean_module_zero_findings;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "JSON byte-identical across runs" `Quick
            test_json_byte_identical;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "round-trip" `Quick test_baseline_round_trip;
          Alcotest.test_case "empty reason rejected" `Quick
            test_baseline_rejects_empty_reason;
          Alcotest.test_case "apply downgrades + stale" `Quick
            test_baseline_apply_downgrades_and_flags_stale;
          Alcotest.test_case "committed baseline well-formed" `Quick
            test_repo_baseline_matches_format;
        ] );
    ]
