(* Tests for Hnlpu_verify — the whole-design static signoff engine.

   Every rule ID gets at least one positive test (the reference design is
   clean of it) and one negative test (its seeded-broken fixture flags it
   at Error severity), plus property tests that Noc.Schedule's collective
   plans verify clean under the NOC rules for every row/column group shape
   and that mutated plans are flagged. *)

open Hnlpu_util
open Hnlpu_verify
open Hnlpu_noc

let reference = Signoff.reference ()

let reference_diagnostics = Signoff.check reference

let errors_only ds =
  List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) ds

(* --- Diagnostic mechanics ------------------------------------------------- *)

let test_exit_codes () =
  let e = Diagnostic.error ~rule:"X" ~subject:"s" "boom" in
  let w = Diagnostic.warning ~rule:"X" ~subject:"s" "hm" in
  let i = Diagnostic.info ~rule:"X" ~subject:"s" "ok" in
  Alcotest.(check int) "clean" 0 (Diagnostic.exit_code []);
  Alcotest.(check int) "info only" 0 (Diagnostic.exit_code [ i ]);
  Alcotest.(check int) "warning" 1 (Diagnostic.exit_code [ i; w ]);
  Alcotest.(check int) "error dominates" 2 (Diagnostic.exit_code [ i; w; e ])

let test_report_renders () =
  let ds =
    [
      Diagnostic.info ~rule:"ME-LVS" ~subject:"chip00" "fine";
      Diagnostic.error ~rule:"ME-TRACK" ~subject:"chip01" "short";
    ]
  in
  let r = Diagnostic.report ds in
  Alcotest.(check bool) "errors first" true
    (Thelp.contains r "[ERROR ME-TRACK]" && Thelp.contains r "signoff: 1 error(s)");
  let hidden = Diagnostic.report ~show_info:false ds in
  Alcotest.(check bool) "info suppressed" false (Thelp.contains hidden "ME-LVS")

let test_json_renders () =
  let ds = [ Diagnostic.error ~rule:"NOC-LINK" ~subject:"plan" "a \"quoted\" hop" ] in
  let j = Diagnostic.to_json ds in
  Alcotest.(check bool) "escaped and tagged" true
    (Thelp.contains j "\"rule\": \"NOC-LINK\""
    && Thelp.contains j "\\\"quoted\\\""
    && Thelp.contains j "\"severity\": \"error\"")

let test_normalize_dedupes_and_orders () =
  let e = Diagnostic.error ~rule:"X" ~subject:"s" "boom" in
  let w = Diagnostic.warning ~rule:"W" ~subject:"s" "hm" in
  let i = Diagnostic.info ~rule:"A" ~subject:"s" "ok" in
  (* Exact duplicates collapse; severities order errors-first. *)
  Alcotest.(check int) "duplicates collapse" 3
    (List.length (Diagnostic.normalize [ i; e; w; e; i; w ]));
  (match Diagnostic.normalize [ i; w; e ] with
  | [ a; b; c ] ->
    Alcotest.(check bool) "errors first" true
      (a.Diagnostic.severity = Diagnostic.Error
      && b.Diagnostic.severity = Diagnostic.Warning
      && c.Diagnostic.severity = Diagnostic.Info)
  | _ -> Alcotest.fail "normalize changed the count");
  (* to_json goes through normalize: any input order exports byte-identically. *)
  Alcotest.(check string) "json is order-insensitive"
    (Diagnostic.to_json [ e; w; i ])
    (Diagnostic.to_json [ i; i; w; e; w ])

(* --- Reference design is signoff-clean ------------------------------------- *)

let test_reference_clean () =
  Alcotest.(check int) "no errors" 0 (List.length (errors_only reference_diagnostics));
  Alcotest.(check int) "no warnings" 0
    (Diagnostic.count Diagnostic.Warning reference_diagnostics);
  Alcotest.(check int) "exit 0" 0 (Diagnostic.exit_code reference_diagnostics)

let test_reference_reports_every_family () =
  (* The clean run still mentions each rule family at Info level, so a
     silent rule cannot be mistaken for a passing one. *)
  List.iter
    (fun rule ->
      Alcotest.(check bool) (rule ^ " audited") true
        (Diagnostic.has_rule rule reference_diagnostics
        || List.mem rule [ "ME-TRACK"; "ME-PORT"; "ME-WINDOW"; "NOC-LINK"; "NOC-PORT" ]))
    Signoff.rules

(* --- One fixture per rule --------------------------------------------------- *)

let test_fixture rule () =
  let ds = Signoff.check (Signoff.fixture rule) in
  let want = Signoff.expected_severity rule in
  Alcotest.(check bool) (rule ^ " fires") true
    (Diagnostic.has_rule ~min_severity:want rule ds);
  Alcotest.(check int) "nonzero exit"
    (match want with Diagnostic.Warning -> 1 | _ -> 2)
    (Diagnostic.exit_code ds)

let test_fixture_positive rule () =
  Alcotest.(check bool) (rule ^ " clean on reference") false
    (Diagnostic.has_rule
       ~min_severity:(Signoff.expected_severity rule)
       rule reference_diagnostics)

let test_unknown_fixture () =
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Signoff.fixture "NO-SUCH");
       false
     with Invalid_argument _ -> true)

let test_rules_all_have_fixtures () =
  (* Round-trip: every published rule ID has a constructible fixture and a
     declared severity — so the self-test and the fixture_cases below cover
     exactly Signoff.rules (including the four static dataflow families). *)
  List.iter
    (fun rule ->
      ignore (Signoff.fixture rule);
      ignore (Signoff.expected_severity rule))
    Signoff.rules;
  Alcotest.(check int) "rule count" 20 (List.length Signoff.rules);
  List.iter
    (fun rule ->
      Alcotest.(check bool) (rule ^ " published") true (List.mem rule Signoff.rules))
    [ "NOC-DEADLOCK"; "NOC-DEFUSE"; "BUF-LIVE"; "DET-LINT" ]

let test_makespan_fixture_is_warning () =
  (* A slow-but-correct plan must gate as a Warning (exit 1), not an
     Error: the values it computes are right. *)
  let ds = Signoff.check (Signoff.fixture "NOC-MAKESPAN") in
  Alcotest.(check bool) "warning fires" true
    (Diagnostic.has_rule ~min_severity:Diagnostic.Warning "NOC-MAKESPAN" ds);
  Alcotest.(check int) "no errors" 0 (List.length (errors_only ds));
  Alcotest.(check int) "exit 1" 1 (Diagnostic.exit_code ds)

let test_defuse_fixture_conserves_bytes () =
  (* The NOC-DEFUSE fixture is the same swapped-transfer trick as NOC-EXEC
     (on another column): byte-clean, value-broken.  The static pass must
     convict it without executing anything. *)
  let d = Signoff.fixture "NOC-DEFUSE" in
  let name, coll, plan =
    List.find (fun (n, _, _) -> n = "all-reduce.col2") d.Signoff.plans
  in
  Alcotest.(check int) "NOC-BYTES still clean" 0
    (List.length (errors_only (Noc_rules.conservation ~subject:name coll plan)));
  Alcotest.(check bool) "NOC-DEFUSE convicts statically" true
    (errors_only (Static.defuse ~subject:name coll plan) <> [])

let test_exec_fixture_conserves_bytes () =
  (* The canonical NOC-EXEC fixture is invisible to the static rules: the
     swapped transfers still balance every chip's byte tally. *)
  let d = Signoff.fixture "NOC-EXEC" in
  let name, coll, plan =
    List.find (fun (n, _, _) -> n = "all-reduce.col0") d.Signoff.plans
  in
  Alcotest.(check int) "NOC-BYTES still clean" 0
    (List.length (errors_only (Noc_rules.conservation ~subject:name coll plan)));
  Alcotest.(check bool) "NOC-EXEC catches it" true
    (errors_only (Noc_rules.execution ~subject:name coll plan) <> [])

(* --- Netlist rules, directly ------------------------------------------------ *)

let bank seed =
  Hnlpu_neuron.Gemv.random (Rng.create seed) ~in_features:32 ~out_features:4
    ~act_bits:8

let test_congestion_histogram () =
  let n = Hnlpu_litho.Hn_compiler.compile ~slack:16.0 (bank 1) in
  let ds = Netlist_rules.congestion ~subject:"b" n in
  Alcotest.(check int) "info only" 0 (List.length (errors_only ds));
  Alcotest.(check bool) "histogram names layers" true
    (List.exists
       (fun d ->
         Thelp.contains d.Diagnostic.message "M8"
         && Thelp.contains d.Diagnostic.message "M11")
       ds)

let test_congestion_tight_window () =
  let n = Hnlpu_litho.Hn_compiler.compile ~slack:16.0 (bank 2) in
  let ds = Netlist_rules.congestion ~tracks_per_layer:3 ~subject:"b" n in
  Alcotest.(check bool) "window exceeded" true (errors_only ds <> [])

let test_lvs_pinpoints_cell () =
  let g = bank 3 in
  let n = Hnlpu_litho.Hn_compiler.compile ~slack:16.0 g in
  let broken =
    match n.Hnlpu_litho.Hn_compiler.wires with
    | w :: rest ->
      {
        n with
        Hnlpu_litho.Hn_compiler.wires =
          { w with Hnlpu_litho.Hn_compiler.region = (w.Hnlpu_litho.Hn_compiler.region + 1) mod 16 }
          :: rest;
      }
    | _ -> Alcotest.fail "expected wires"
  in
  match errors_only (Netlist_rules.lvs ~subject:"b" broken g) with
  | [ d ] ->
    Alcotest.(check bool) "names the cell" true
      (Thelp.contains d.Diagnostic.message "n0.i0")
  | ds -> Alcotest.failf "expected one ME-LVS error, got %d" (List.length ds)

let test_mask_uniformity_accepts_different_weights () =
  let chips =
    List.map
      (fun seed ->
        ( Printf.sprintf "c%d" seed,
          Hnlpu_litho.Hn_compiler.compile ~slack:16.0 (bank (100 + seed)) ))
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "uniform prefab" 0
    (List.length (errors_only (Netlist_rules.mask_uniformity chips)))

let test_mask_uniformity_rejects_shape_drift () =
  let a = Hnlpu_litho.Hn_compiler.compile ~slack:16.0 (bank 1) in
  let b =
    Hnlpu_litho.Hn_compiler.compile ~slack:16.0
      (Hnlpu_neuron.Gemv.random (Rng.create 2) ~in_features:32 ~out_features:5
         ~act_bits:8)
  in
  Alcotest.(check bool) "shape drift flagged" true
    (errors_only (Netlist_rules.mask_uniformity [ ("a", a); ("b", b) ]) <> [])

(* --- NOC rules: property tests over every group shape ----------------------- *)

(* All row/column subgroup shapes: a line (row or col), its index, and a
   subset of at least two of its four chips, encoded as a bitmask. *)
let group_gen =
  QCheck.Gen.(
    map3
      (fun is_row idx mask -> (is_row, idx mod 4, mask))
      bool (int_bound 3)
      (int_range 0 15 >>= fun m ->
       if List.length (List.filter (fun b -> m land (1 lsl b) <> 0) [ 0; 1; 2; 3 ]) >= 2
       then return m
       else return 0b0011))

let group_of (is_row, idx, mask) =
  let line = if is_row then Topology.row_group idx else Topology.col_group idx in
  List.filteri (fun i _ -> mask land (1 lsl i) <> 0) line

let group_arb =
  QCheck.make group_gen ~print:(fun (r, i, m) ->
      Printf.sprintf "%s %d mask %#x" (if r then "row" else "col") i m)

let clean coll plan = errors_only (Noc_rules.check ~subject:"p" coll plan) = []

let prop_all_reduce_verifies =
  QCheck.Test.make ~name:"all_reduce verifies clean on every group shape"
    ~count:100 group_arb
    (fun shape ->
      let group = group_of shape in
      let bytes = 4096 in
      clean (Noc_rules.All_reduce { group; bytes }) (Schedule.all_reduce ~group ~bytes))

let prop_all_gather_verifies =
  QCheck.Test.make ~name:"all_gather verifies clean on every group shape"
    ~count:100 group_arb
    (fun shape ->
      let group = group_of shape in
      let shard_bytes = 1024 in
      clean
        (Noc_rules.All_gather { group; shard_bytes })
        (Schedule.all_gather ~group ~shard_bytes))

let prop_dropped_transfer_flagged =
  QCheck.Test.make ~name:"dropping any transfer breaks byte conservation"
    ~count:100 group_arb
    (fun shape ->
      let group = group_of shape in
      let bytes = 4096 in
      let plan = Schedule.all_reduce ~group ~bytes in
      let mutated =
        match plan with
        | (_ :: rest) :: steps -> rest :: steps
        | _ -> plan
      in
      List.exists
        (fun d -> d.Diagnostic.rule = "NOC-BYTES")
        (errors_only (Noc_rules.check ~subject:"p" (Noc_rules.All_reduce { group; bytes }) mutated)))

let prop_wrong_link_flagged =
  QCheck.Test.make ~name:"rewiring a transfer off the fabric is flagged"
    ~count:100 group_arb
    (fun shape ->
      let group = group_of shape in
      let bytes = 512 in
      let plan = Schedule.all_gather ~group ~shard_bytes:bytes in
      let diagonal_of c =
        Topology.chip_at
          ~row:((Topology.row_of c + 1) mod Topology.rows)
          ~col:((Topology.col_of c + 1) mod Topology.cols)
      in
      let mutated =
        match plan with
        | ({ Schedule.src; dst = _; bytes } :: rest) :: steps ->
          ({ Schedule.src; dst = diagonal_of src; bytes } :: rest) :: steps
        | _ -> plan
      in
      mutated = plan
      || List.exists
           (fun d -> d.Diagnostic.rule = "NOC-LINK")
           (errors_only
              (Noc_rules.check ~subject:"p"
                 (Noc_rules.All_gather { group; shard_bytes = bytes })
                 mutated)))

let prop_exec_passes_on_canonical =
  QCheck.Test.make ~name:"NOC-EXEC passes Schedule.all_reduce on every group shape"
    ~count:100 group_arb
    (fun shape ->
      let group = group_of shape in
      let bytes = 1024 in
      let plan = Schedule.all_reduce ~group ~bytes in
      List.for_all
        (fun d -> d.Diagnostic.severity = Diagnostic.Info)
        (Noc_rules.execution ~subject:"p"
           (Noc_rules.All_reduce { group; bytes })
           plan))

let prop_exec_catches_swapped_src =
  QCheck.Test.make
    ~name:"NOC-EXEC fails when one transfer's src and dst are swapped"
    ~count:100 group_arb
    (fun shape ->
      let group = group_of shape in
      let bytes = 1024 in
      let plan = Schedule.all_reduce ~group ~bytes in
      let mutated =
        match plan with
        | ({ Schedule.src; dst; bytes } :: rest) :: steps ->
          ({ Schedule.src = dst; dst = src; bytes } :: rest) :: steps
        | _ -> plan
      in
      List.exists
        (fun d ->
          d.Diagnostic.rule = "NOC-EXEC"
          && d.Diagnostic.severity = Diagnostic.Error)
        (Noc_rules.execution ~subject:"p"
           (Noc_rules.All_reduce { group; bytes })
           mutated))

(* --- Static dataflow analyses ------------------------------------------------ *)

let max_context = 65536

let static_clean coll plan =
  errors_only
    (Static.check_plan ~subject:"p" ~config:Hnlpu_model.Config.gpt_oss_120b
       ~max_context coll plan)
  = []

let col0_broadcast = Noc_rules.Broadcast { root = 0; group = Topology.col_group 0; bytes = 64 }

let test_deadlock_cycle_reported () =
  (* A same-step forwarding ring among three unwritten chips: nobody can
     start; the diagnostic names the cycle path. *)
  let t src dst = { Schedule.src; dst; bytes = 64 } in
  let plan = [ [ t 4 8; t 8 12; t 12 4 ] ] in
  match errors_only (Static.deadlock ~subject:"p" col0_broadcast plan) with
  | [ d ] ->
    Alcotest.(check bool) "cycle path in message" true
      (Thelp.contains d.Diagnostic.message "4->8"
      && Thelp.contains d.Diagnostic.message "waits on")
  | ds -> Alcotest.failf "expected one NOC-DEADLOCK error, got %d" (List.length ds)

let test_deadlock_chain_is_not_cycle () =
  (* Same shape minus the closing edge: an (invalid) forward chain is a
     def-use violation, not a deadlock. *)
  let t src dst = { Schedule.src; dst; bytes = 64 } in
  let plan = [ [ t 4 8; t 8 12 ] ] in
  Alcotest.(check int) "no deadlock" 0
    (List.length (errors_only (Static.deadlock ~subject:"p" col0_broadcast plan)));
  Alcotest.(check bool) "but read-before-write flagged" true
    (errors_only (Static.defuse ~subject:"p" col0_broadcast plan) <> [])

let test_defuse_unwritten_read () =
  (* A scatter where a peer forwards before the root sent it anything. *)
  let coll =
    Noc_rules.Scatter { root = 15; group = Topology.row_group 3; shard_bytes = 64 }
  in
  let plan = [ [ { Schedule.src = 12; dst = 13; bytes = 64 } ] ] in
  Alcotest.(check bool) "never-written read flagged" true
    (List.exists
       (fun d -> Thelp.contains d.Diagnostic.message "never-written")
       (errors_only (Static.defuse ~subject:"p" coll plan)))

let test_defuse_double_overwrite_race () =
  let t dst = { Schedule.src = 0; dst; bytes = 64 } in
  (* Two same-step broadcast deliveries into chip 4's slot. *)
  let plan = [ [ t 4; t 4; t 8; t 12 ] ] in
  Alcotest.(check bool) "write race flagged" true
    (List.exists
       (fun d -> Thelp.contains d.Diagnostic.message "race")
       (errors_only (Static.defuse ~subject:"p" col0_broadcast plan)))

let test_defuse_dead_transfer_warning () =
  (* A canonical star reduce plus a gratuitous same-step peer-to-peer copy:
     bytes-visible, value-correct (transfers read start-of-step state), but
     the copy reaches no required chip — a dead transfer, Warning only. *)
  let group = Topology.row_group 0 in
  let coll = Noc_rules.Reduce { root = 0; group; bytes = 64 } in
  let plan =
    match Schedule.reduce ~root:0 ~group ~bytes:64 with
    | [ step ] -> [ step @ [ { Schedule.src = 1; dst = 2; bytes = 64 } ] ]
    | p -> p
  in
  let ds = Static.defuse ~subject:"p" coll plan in
  Alcotest.(check int) "no errors" 0 (List.length (errors_only ds));
  Alcotest.(check bool) "dead transfer warned" true
    (List.exists
       (fun d ->
         d.Diagnostic.severity = Diagnostic.Warning
         && Thelp.contains d.Diagnostic.message "dead transfer")
       ds)

let test_buf_live_bands () =
  let config = Hnlpu_model.Config.gpt_oss_120b in
  let headroom = Static.headroom_bytes config ~max_context in
  Alcotest.(check bool) "headroom positive at 64K" true (headroom > 0);
  (* One transfer 0 -> 4 of B bytes peaks each endpoint at 2B (working copy
     + staging); pick B per band. *)
  let check_band name bytes want =
    let plan = [ [ { Schedule.src = 0; dst = 4; bytes } ] ] in
    let ds =
      Static.buffer_liveness ~subject:name ~config ~max_context plan
    in
    match ds with
    | [ d ] -> Alcotest.(check bool) name true (d.Diagnostic.severity = want)
    | _ -> Alcotest.failf "%s: expected one diagnostic" name
  in
  check_band "tiny payload is Info" 4096 Diagnostic.Info;
  check_band "94%% of headroom is a Warning" (headroom * 47 / 100) Diagnostic.Warning;
  check_band "2x headroom is an Error" headroom Diagnostic.Error

let test_det_lint_hazards () =
  let module E = Hnlpu_system.Execution in
  let clean = Static.determinism ~subject:"e" E.deterministic in
  Alcotest.(check int) "deterministic config is clean" 0
    (List.length (errors_only clean));
  Alcotest.(check bool) "audited at Info" true
    (List.exists (fun d -> d.Diagnostic.severity = Diagnostic.Info) clean);
  let hazard name e =
    Alcotest.(check bool) name true
      (errors_only (Static.determinism ~subject:"e" e) <> [])
  in
  hazard "wall-clock seed"
    { E.deterministic with E.workload_seed = E.Wall_clock };
  hazard "completion-order merge"
    { E.deterministic with E.sink_merge = E.Completion_order };
  hazard "hash-order export"
    { E.deterministic with E.export_order = E.Hash_order }

let test_static_raw_plan_skipped () =
  (* Raw plans declare no payload semantics: deadlock assumes every
     endpoint is a producer and def-use is skipped — Info only. *)
  let plan = Schedule.all_chip_all_reduce ~bytes:8192 in
  Alcotest.(check bool) "info only" true
    (List.for_all
       (fun d -> d.Diagnostic.severity = Diagnostic.Info)
       (Static.deadlock ~subject:"p" Noc_rules.Raw plan
       @ Static.defuse ~subject:"p" Noc_rules.Raw plan))

(* Every canonical Schedule generator passes every static pass, across all
   group shapes (the acceptance-criteria property). *)
let prop_static_passes_canonical_generators =
  QCheck.Test.make
    ~name:"every canonical generator passes all static passes on every shape"
    ~count:100 group_arb
    (fun shape ->
      let group = group_of shape in
      let root = List.fold_left min max_int group in
      let bytes = 4096 in
      List.for_all
        (fun (coll, plan) -> static_clean coll plan)
        [
          ( Noc_rules.Reduce { root; group; bytes },
            Schedule.reduce ~root ~group ~bytes );
          ( Noc_rules.Broadcast { root; group; bytes },
            Schedule.broadcast ~root ~group ~bytes );
          ( Noc_rules.All_reduce { group; bytes },
            Schedule.all_reduce ~group ~bytes );
          ( Noc_rules.All_gather { group; shard_bytes = bytes },
            Schedule.all_gather ~group ~shard_bytes:bytes );
          ( Noc_rules.Scatter { root; group; shard_bytes = bytes },
            Schedule.scatter ~root ~group ~shard_bytes:bytes );
          (Noc_rules.Raw, Schedule.all_chip_all_reduce ~bytes);
        ])

(* Permuting the steps of a canonical all-reduce either stays correct (a
   2-chip group is symmetric) or breaks it — and whenever the dynamic
   NOC-EXEC cross-check convicts the permuted plan, the static passes
   convict it too, and vice versa.  Static admission never waves through a
   plan that execution would reject. *)
let prop_permuted_steps_static_matches_exec =
  QCheck.Test.make
    ~name:"step-permuted all_reduce: static verdict == NOC-EXEC verdict"
    ~count:100
    QCheck.(pair group_arb bool)
    (fun (shape, swap) ->
      let group = group_of shape in
      let bytes = 1024 in
      let coll = Noc_rules.All_reduce { group; bytes } in
      let plan =
        match (Schedule.all_reduce ~group ~bytes, swap) with
        | [ s0; s1 ], true -> [ s1; s0 ]
        | plan, _ -> plan
      in
      let static_bad =
        errors_only
          (Static.deadlock ~subject:"p" coll plan
          @ Static.defuse ~subject:"p" coll plan)
        <> []
      in
      let exec_bad = errors_only (Noc_rules.execution ~subject:"p" coll plan) <> [] in
      static_bad = exec_bad)

let test_all_chip_all_reduce_raw_clean () =
  let plan = Schedule.all_chip_all_reduce ~bytes:8192 in
  Alcotest.(check int) "links and ports clean" 0
    (List.length (errors_only (Noc_rules.check ~subject:"p" Noc_rules.Raw plan)))

let test_contention_rx_overmerge () =
  (* 7 distinct senders into chip 0: degree is 6. *)
  let senders = [ 1; 2; 3; 4; 8; 12 ] in
  let step = List.map (fun src -> { Schedule.src; dst = 0; bytes = 1 }) senders in
  Alcotest.(check int) "6 within degree" 0
    (List.length (Noc_rules.contention ~subject:"p" [ step ]));
  let overmerge = { Schedule.src = 5; dst = 0; bytes = 1 } :: step in
  (* Chip 5 is not connected to 0 (diagonal) — links rule would flag it,
     but contention independently counts the merge. *)
  Alcotest.(check bool) "7th stream flagged" true
    (Noc_rules.contention ~subject:"p" [ overmerge ] <> [])

(* --- Bundle round-trip --------------------------------------------------------- *)

let test_bundle_roundtrip () =
  let dir = "bundle-roundtrip" in
  let written = Bundle.export ~dir reference in
  Alcotest.(check bool) "manifest + 32 chip files + plans + stage_map" true
    (List.length written >= 40);
  let d = Bundle.load dir in
  Alcotest.(check string) "config survives" reference.Signoff.config.Hnlpu_model.Config.name
    d.Signoff.config.Hnlpu_model.Config.name;
  Alcotest.(check bool) "chips survive" true
    (List.for_all2
       (fun (a : Signoff.chip_design) (b : Signoff.chip_design) ->
         a.Signoff.chip = b.Signoff.chip
         && a.Signoff.netlist = b.Signoff.netlist
         && a.Signoff.schematic = b.Signoff.schematic)
       reference.Signoff.chips d.Signoff.chips);
  Alcotest.(check bool) "plans survive in order" true
    (d.Signoff.plans = reference.Signoff.plans);
  Alcotest.(check bool) "stage map survives" true
    (d.Signoff.stage_map = reference.Signoff.stage_map);
  Alcotest.(check bool) "execution record survives" true
    (d.Signoff.execution = reference.Signoff.execution);
  Alcotest.(check int) "clean after round-trip" 0
    (Diagnostic.exit_code (Signoff.check d))

let test_bundle_seeded_violation_survives_disk () =
  let dir = "bundle-noc-exec" in
  ignore (Bundle.export ~dir (Signoff.fixture "NOC-EXEC"));
  let ds = Signoff.check (Bundle.load dir) in
  Alcotest.(check bool) "NOC-EXEC fires from disk" true
    (Diagnostic.has_rule ~min_severity:Diagnostic.Error "NOC-EXEC" ds)

let test_bundle_det_lint_survives_disk () =
  (* The wall-clock seed is carried by the manifest's workload-seed key, so
     the determinism lint must convict the bundle after a disk round-trip. *)
  let dir = "bundle-det-lint" in
  ignore (Bundle.export ~dir (Signoff.fixture "DET-LINT"));
  let ds = Signoff.check (Bundle.load dir) in
  Alcotest.(check bool) "DET-LINT fires from disk" true
    (Diagnostic.has_rule ~min_severity:Diagnostic.Error "DET-LINT" ds)

let test_bundle_missing_rejected () =
  Alcotest.(check bool) "missing directory rejected" true
    (try
       ignore (Bundle.load "no-such-bundle-dir");
       false
     with Failure _ -> true)

let test_bundle_bad_manifest_rejected () =
  let dir = "bundle-bad-manifest" in
  ignore (Bundle.export ~dir reference);
  let oc = open_out (Filename.concat dir "manifest") in
  output_string oc "config = no-such-model\nclaimed-slots = 216\nmax-context = 65536\n";
  close_out oc;
  Alcotest.(check bool) "unknown config rejected with location" true
    (try
       ignore (Bundle.load dir);
       false
     with Failure msg -> Thelp.contains msg "manifest" && Thelp.contains msg "no-such-model")

(* --- System rules ------------------------------------------------------------- *)

let config = Hnlpu_model.Config.gpt_oss_120b

let test_stage_map_canonical () =
  let slots = System_rules.canonical_stage_map config in
  Alcotest.(check int) "216 slots" 216 (List.length slots);
  Alcotest.(check int) "clean" 0
    (List.length (errors_only (System_rules.pipeline_mapping ~subject:"p" config slots)))

let test_stage_map_gaps () =
  let slots = List.tl (System_rules.canonical_stage_map config) in
  Alcotest.(check bool) "unmapped stage flagged" true
    (errors_only (System_rules.pipeline_mapping ~subject:"p" config slots) <> [])

let test_stage_map_out_of_range () =
  let slots =
    { System_rules.layer = config.Hnlpu_model.Config.num_layers; stage = 0 }
    :: System_rules.canonical_stage_map config
  in
  Alcotest.(check bool) "range flagged" true
    (errors_only (System_rules.pipeline_mapping ~subject:"p" config slots) <> [])

let test_weight_partition_clean () =
  Alcotest.(check int) "tiles exactly" 0
    (List.length (errors_only (System_rules.weight_partition ~subject:"p" config)))

let test_weight_partition_unmappable () =
  let odd = { config with Hnlpu_model.Config.hidden = 2881; name = "odd" } in
  Alcotest.(check bool) "indivisible flagged" true
    (errors_only (System_rules.weight_partition ~subject:"p" odd) <> [])

let test_buffer_fits_64k () =
  match System_rules.buffer_budget ~subject:"b" config ~max_context:65536 with
  | [ d ] -> Alcotest.(check bool) "info" true (d.Diagnostic.severity = Diagnostic.Info)
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_buffer_spill_warning () =
  (* 256K context spills to HBM but remains streamable (Figure 14 regime). *)
  let ds = System_rules.buffer_budget ~subject:"b" config ~max_context:262144 in
  Alcotest.(check bool) "warning, not error" true
    (List.for_all (fun d -> d.Diagnostic.severity <> Diagnostic.Error) ds
    && List.exists (fun d -> d.Diagnostic.severity = Diagnostic.Warning) ds)

let test_buffer_overflow_error () =
  let ds = System_rules.buffer_budget ~subject:"b" config ~max_context:(64 * 1024 * 1024) in
  Alcotest.(check bool) "error" true
    (List.exists (fun d -> d.Diagnostic.severity = Diagnostic.Error) ds)

let test_scheduler_slots () =
  Alcotest.(check int) "216 accepted" 0
    (List.length
       (errors_only
          (System_rules.scheduler_slots ~subject:"s" config ~claimed_slots:216)));
  Alcotest.(check bool) "mismatch flagged" true
    (errors_only (System_rules.scheduler_slots ~subject:"s" config ~claimed_slots:217)
    <> [])

(* --- Suite -------------------------------------------------------------------- *)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let fixture_cases =
  List.concat_map
    (fun rule ->
      [
        Alcotest.test_case (rule ^ " reference clean") `Quick (test_fixture_positive rule);
        Alcotest.test_case (rule ^ " fixture fires") `Quick (test_fixture rule);
      ])
    Signoff.rules

let () =
  Alcotest.run "hnlpu_verify"
    [
      ( "diagnostic",
        [
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "report" `Quick test_report_renders;
          Alcotest.test_case "json" `Quick test_json_renders;
          Alcotest.test_case "normalize dedupes and orders" `Quick
            test_normalize_dedupes_and_orders;
        ] );
      ( "reference",
        [
          Alcotest.test_case "signoff clean" `Quick test_reference_clean;
          Alcotest.test_case "every family audited" `Quick
            test_reference_reports_every_family;
        ] );
      ( "fixtures",
        Alcotest.test_case "unknown rejected" `Quick test_unknown_fixture
        :: Alcotest.test_case "every rule has a fixture" `Quick
             test_rules_all_have_fixtures
        :: Alcotest.test_case "makespan fixture is a warning" `Quick
             test_makespan_fixture_is_warning
        :: Alcotest.test_case "defuse fixture conserves bytes" `Quick
             test_defuse_fixture_conserves_bytes
        :: Alcotest.test_case "exec fixture conserves bytes" `Quick
             test_exec_fixture_conserves_bytes
        :: fixture_cases );
      ( "bundle",
        [
          Alcotest.test_case "reference round-trips" `Quick test_bundle_roundtrip;
          Alcotest.test_case "seeded violation survives disk" `Quick
            test_bundle_seeded_violation_survives_disk;
          Alcotest.test_case "det lint survives disk" `Quick
            test_bundle_det_lint_survives_disk;
          Alcotest.test_case "missing bundle rejected" `Quick
            test_bundle_missing_rejected;
          Alcotest.test_case "bad manifest rejected" `Quick
            test_bundle_bad_manifest_rejected;
        ] );
      ( "netlist rules",
        [
          Alcotest.test_case "congestion histogram" `Quick test_congestion_histogram;
          Alcotest.test_case "tight window" `Quick test_congestion_tight_window;
          Alcotest.test_case "lvs pinpoints cell" `Quick test_lvs_pinpoints_cell;
          Alcotest.test_case "mask uniformity ok" `Quick
            test_mask_uniformity_accepts_different_weights;
          Alcotest.test_case "mask shape drift" `Quick
            test_mask_uniformity_rejects_shape_drift;
        ] );
      ( "noc rules",
        [
          Alcotest.test_case "all-chip all-reduce raw" `Quick
            test_all_chip_all_reduce_raw_clean;
          Alcotest.test_case "rx overmerge" `Quick test_contention_rx_overmerge;
        ] );
      qsuite "noc properties"
        [
          prop_all_reduce_verifies; prop_all_gather_verifies;
          prop_dropped_transfer_flagged; prop_wrong_link_flagged;
          prop_exec_passes_on_canonical; prop_exec_catches_swapped_src;
        ];
      ( "static rules",
        [
          Alcotest.test_case "deadlock cycle reported" `Quick
            test_deadlock_cycle_reported;
          Alcotest.test_case "chain is not a cycle" `Quick
            test_deadlock_chain_is_not_cycle;
          Alcotest.test_case "unwritten read" `Quick test_defuse_unwritten_read;
          Alcotest.test_case "double-overwrite race" `Quick
            test_defuse_double_overwrite_race;
          Alcotest.test_case "dead transfer warns" `Quick
            test_defuse_dead_transfer_warning;
          Alcotest.test_case "buffer liveness bands" `Quick test_buf_live_bands;
          Alcotest.test_case "determinism hazards" `Quick test_det_lint_hazards;
          Alcotest.test_case "raw plan skipped" `Quick test_static_raw_plan_skipped;
        ] );
      qsuite "static properties"
        [
          prop_static_passes_canonical_generators;
          prop_permuted_steps_static_matches_exec;
        ];
      ( "system rules",
        [
          Alcotest.test_case "stage map canonical" `Quick test_stage_map_canonical;
          Alcotest.test_case "stage map gaps" `Quick test_stage_map_gaps;
          Alcotest.test_case "stage map range" `Quick test_stage_map_out_of_range;
          Alcotest.test_case "weight partition" `Quick test_weight_partition_clean;
          Alcotest.test_case "unmappable config" `Quick test_weight_partition_unmappable;
          Alcotest.test_case "buffer fits 64K" `Quick test_buffer_fits_64k;
          Alcotest.test_case "buffer spill 256K" `Quick test_buffer_spill_warning;
          Alcotest.test_case "buffer overflow" `Quick test_buffer_overflow_error;
          Alcotest.test_case "scheduler slots" `Quick test_scheduler_slots;
        ] );
    ]
