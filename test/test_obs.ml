(* Tests for Hnlpu_obs — the telemetry subsystem — and its hooks across
   the serving simulators.

   The Chrome-trace and metrics exports are validated by an in-tree
   strict JSON parser (RFC 8259 grammar, no extensions), the same-seed
   export is pinned byte-identical, QCheck properties assert span
   well-formedness and request-span nesting over random workloads, and
   the no-sink path is checked bit-identical to the uninstrumented
   scheduler. *)

open Hnlpu_obs

let config = Hnlpu.Config.gpt_oss_120b

(* --- A strict JSON parser (RFC 8259, nothing more) ------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub input !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal"
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for i = !pos to !pos + 3 do
      let d =
        match input.[i] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      v := (!v * 16) + d
    done;
    pos := !pos + 4;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match input.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        (match peek () with
        | Some (('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') as c) ->
          Buffer.add_char buf
            (match c with
            | 'b' -> '\b'
            | 'f' -> '\012'
            | 'n' -> '\n'
            | 'r' -> '\r'
            | 't' -> '\t'
            | c -> c);
          incr pos
        | Some 'u' ->
          incr pos;
          let cp = hex4 () in
          Buffer.add_char buf (if cp < 0x80 then Char.chr cp else '?')
        | _ -> fail "bad escape");
        go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let digits () =
    let start = !pos in
    while !pos < n && input.[!pos] >= '0' && input.[!pos] <= '9' do
      incr pos
    done;
    if !pos = start then fail "expected digits"
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    (match peek () with
    | Some '0' -> incr pos
    | Some ('1' .. '9') -> digits ()
    | _ -> fail "bad number");
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits ()
    | _ -> ());
    Num (float_of_string (String.sub input start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "unexpected input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj kvs -> (
    match List.assoc_opt key kvs with
    | Some v -> v
    | None -> Alcotest.failf "missing key %S" key)
  | _ -> Alcotest.failf "not an object (looking for %S)" key

let as_arr = function Arr xs -> xs | _ -> Alcotest.fail "not an array"

let as_num = function Num x -> x | _ -> Alcotest.fail "not a number"

let as_str = function Str s -> s | _ -> Alcotest.fail "not a string"

let test_parser_is_strict () =
  let rejects s =
    match parse_json s with exception Bad_json _ -> true | _ -> false
  in
  Alcotest.(check bool) "trailing comma" true (rejects "[1,2,]");
  Alcotest.(check bool) "NaN literal" true (rejects "NaN");
  Alcotest.(check bool) "bare infinity" true (rejects "[Infinity]");
  Alcotest.(check bool) "leading zeros" true (rejects "01");
  Alcotest.(check bool) "single quotes" true (rejects "{'a': 1}");
  Alcotest.(check bool) "trailing garbage" true (rejects "{} x");
  Alcotest.(check bool) "plain object" false (rejects "{\"a\": [1, -2.5e3, null]}")

(* --- Json combinators ------------------------------------------------------ *)

let test_json_combinators () =
  Alcotest.(check string) "nan is null" "null" (Json.number nan);
  Alcotest.(check string) "inf is null" "null" (Json.number infinity);
  Alcotest.(check string) "integral float" "3" (Json.number 3.0);
  Alcotest.(check string) "negative zero-ish" "-2" (Json.number (-2.0));
  (match parse_json (Json.number 1.5e-7) with
  | Num x -> Alcotest.(check (float 1e-20)) "tiny float round-trips" 1.5e-7 x
  | _ -> Alcotest.fail "not a number");
  match parse_json (Json.string "a\"b\\c\nd\ttab\x01") with
  | Str s -> Alcotest.(check string) "escapes round-trip" "a\"b\\c\nd\ttab\x01" s
  | _ -> Alcotest.fail "not a string"

(* --- Ring ------------------------------------------------------------------ *)

let test_ring () =
  Alcotest.(check bool) "capacity 0 raises" true
    (match Ring.create ~capacity:0 with
    | exception Invalid_argument _ -> true
    | (_ : int Ring.t) -> false);
  let r = Ring.create ~capacity:3 in
  Alcotest.(check int) "empty" 0 (Ring.length r);
  List.iter (Ring.push r) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "in order" [ 1; 2; 3 ] (Ring.to_list r);
  List.iter (Ring.push r) [ 4; 5 ];
  Alcotest.(check (list int)) "oldest evicted" [ 3; 4; 5 ] (Ring.to_list r);
  Alcotest.(check int) "length capped" 3 (Ring.length r);
  Alcotest.(check int) "pushed total" 5 (Ring.pushed r);
  Alcotest.(check int) "dropped" 2 (Ring.dropped r)

(* --- Metrics ---------------------------------------------------------------- *)

let test_metrics_basic () =
  let m = Metrics.create () in
  Metrics.incr m "a/count";
  Metrics.incr m ~by:4.0 "a/count";
  Metrics.set m "a/gauge" 2.5;
  Metrics.set m "a/gauge" 7.0;
  List.iter (Metrics.observe m "a/hist") [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check (option (float 0.0))) "counter" (Some 5.0)
    (Metrics.counter m "a/count");
  Alcotest.(check (option (float 0.0))) "gauge last-write-wins" (Some 7.0)
    (Metrics.gauge m "a/gauge");
  (match Metrics.histogram m "a/hist" with
  | None -> Alcotest.fail "no histogram"
  | Some s ->
    Alcotest.(check int) "count" 4 s.Metrics.count;
    Alcotest.(check (float 1e-9)) "mean" 2.5 s.Metrics.mean;
    Alcotest.(check (float 1e-9)) "min" 1.0 s.Metrics.min_v;
    Alcotest.(check (float 1e-9)) "max" 4.0 s.Metrics.max_v);
  Alcotest.(check (list string)) "names sorted"
    [ "a/count"; "a/gauge"; "a/hist" ]
    (Metrics.names m)

let test_metrics_kind_conflict () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Alcotest.(check bool) "set on a counter raises" true
    (match Metrics.set m "x" 1.0 with
    | exception Invalid_argument _ -> true
    | () -> false);
  Alcotest.(check bool) "observe on a counter raises" true
    (match Metrics.observe m "x" 1.0 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_metrics_json_strict () =
  let m = Metrics.create () in
  Metrics.incr m ~by:3.0 "noc/transfers";
  Metrics.set m "weird/nan_gauge" nan;
  Metrics.observe m "lat/s" 0.25;
  let j = parse_json (Metrics.to_json m) in
  Alcotest.(check (float 0.0)) "counter exported" 3.0
    (as_num (member "noc/transfers" (member "counters" j)));
  Alcotest.(check bool) "nan gauge exports as null" true
    (member "weird/nan_gauge" (member "gauges" j) = Null);
  Alcotest.(check int) "histogram count" 1
    (int_of_float (as_num (member "count" (member "lat/s" (member "histograms" j)))))

(* --- Sink ------------------------------------------------------------------- *)

let track = Event.track ~process:"test" ~thread:"t0"

let test_sink_rejects_bad_spans () =
  let o = Sink.create () in
  let raises dur =
    match Sink.span o ~track ~name:"s" ~start_s:0.0 ~dur_s:dur with
    | exception Invalid_argument _ -> true
    | () -> false
  in
  Alcotest.(check bool) "negative duration" true (raises (-1.0));
  Alcotest.(check bool) "nan duration" true (raises nan);
  Alcotest.(check bool) "infinite duration" true (raises infinity);
  Alcotest.(check bool) "zero duration is fine" false (raises 0.0)

let test_sink_capacity () =
  let o = Sink.create ~capacity:4 () in
  for i = 1 to 10 do
    Sink.instant o ~track ~name:"tick" ~ts_s:(float_of_int i)
  done;
  Alcotest.(check int) "recorded all" 10 (Sink.recorded o);
  Alcotest.(check int) "dropped overflow" 6 (Sink.dropped o);
  Alcotest.(check int) "retained tail" 4 (List.length (Sink.events o));
  Alcotest.(check (float 0.0)) "oldest retained is #7" 7.0
    (Event.ts_s (List.hd (Sink.events o)))

(* --- Chrome-trace export ----------------------------------------------------- *)

let sample_events =
  let a = Event.track ~process:"p1" ~thread:"alpha" in
  let b = Event.track ~process:"p2" ~thread:"beta" in
  [
    Event.Span
      {
        track = a;
        name = "work";
        cat = "cat1";
        ts_s = 1.5;
        dur_s = 0.25;
        args = [ ("k", Event.S "v"); ("n", Event.I 3); ("x", Event.F 0.5) ];
      };
    Event.Instant { track = b; name = "mark"; cat = ""; ts_s = 2.0; args = [] };
    Event.Counter { track = a; name = "depth"; ts_s = 2.5; value = 4.0 };
  ]

let test_chrome_trace_export () =
  let j = parse_json (Chrome_trace.to_json sample_events) in
  let evs = as_arr (member "traceEvents" j) in
  let phase e = as_str (member "ph" e) in
  let of_phase p = List.filter (fun e -> phase e = p) evs in
  Alcotest.(check int) "one complete span" 1 (List.length (of_phase "X"));
  Alcotest.(check int) "one instant" 1 (List.length (of_phase "i"));
  Alcotest.(check int) "one counter sample" 1 (List.length (of_phase "C"));
  Alcotest.(check int) "2 process + 2 thread metadata" 4
    (List.length (of_phase "M"));
  let span = List.hd (of_phase "X") in
  Alcotest.(check (float 1e-9)) "ts in microseconds" 1.5e6
    (as_num (member "ts" span));
  Alcotest.(check (float 1e-9)) "dur in microseconds" 0.25e6
    (as_num (member "dur" span));
  Alcotest.(check string) "cat preserved" "cat1" (as_str (member "cat" span));
  Alcotest.(check string) "string arg" "v"
    (as_str (member "k" (member "args" span)));
  let counter = List.hd (of_phase "C") in
  Alcotest.(check (float 0.0)) "counter value" 4.0
    (as_num (member "value" (member "args" counter)));
  (* pids are assigned in first-appearance order, so p1 < p2. *)
  let pid_of_proc name =
    List.filter_map
      (fun e ->
        if phase e = "M" && as_str (member "name" e) = "process_name"
           && as_str (member "name" (member "args" e)) = name
        then Some (int_of_float (as_num (member "pid" e)))
        else None)
      evs
    |> List.hd
  in
  Alcotest.(check bool) "first-appearance pid order" true
    (pid_of_proc "p1" < pid_of_proc "p2")

let test_jsonl_export () =
  let lines =
    String.split_on_char '\n' (String.trim (Chrome_trace.to_jsonl sample_events))
  in
  Alcotest.(check int) "one line per event, no metadata" 3 (List.length lines);
  List.iter
    (fun line ->
      let j = parse_json line in
      ignore (as_str (member "process" j));
      ignore (as_str (member "thread" j)))
    lines

(* --- Scheduler instrumentation ---------------------------------------------- *)

let sched_run ?obs seed =
  let rng = Hnlpu.Rng.create seed in
  let reqs =
    Hnlpu.Scheduler.workload rng ~n:40 ~rate_per_s:3000.0 ~mean_prefill:32
      ~mean_decode:16
  in
  Hnlpu.Scheduler.simulate ?obs config reqs

let test_no_sink_bit_identical () =
  let plain = sched_run 11 in
  let obs = Sink.create () in
  let instrumented = sched_run ~obs 11 in
  Alcotest.(check bool) "results identical with and without a sink" true
    (plain = instrumented);
  Alcotest.(check bool) "the sink actually recorded" true (Sink.recorded obs > 0)

let test_same_seed_export_identical () =
  let export seed =
    let obs = Sink.create () in
    ignore (sched_run ~obs seed);
    (Chrome_trace.to_json (Sink.events obs), Metrics.to_json (Sink.metrics obs))
  in
  let t1, m1 = export 23 in
  let t2, m2 = export 23 in
  Alcotest.(check string) "trace JSON byte-identical" t1 t2;
  Alcotest.(check string) "metrics JSON byte-identical" m1 m2

let spans_of evs =
  List.filter_map
    (function
      | Event.Span { track; name; ts_s; dur_s; _ } ->
        Some (track, name, ts_s, dur_s)
      | _ -> None)
    evs

let test_scheduler_spans () =
  let obs = Sink.create () in
  let r = sched_run ~obs 3 in
  let spans = spans_of (Sink.events obs) in
  let parents =
    List.filter (fun ((_, name, _, _) : Event.track * _ * _ * _) -> name = "request") spans
  in
  Alcotest.(check int) "one request span per completed request"
    (List.length r.Hnlpu.Scheduler.completed_requests)
    (List.length parents);
  (* TTFT histogram feeds the metrics registry. *)
  match Metrics.histogram (Sink.metrics obs) "scheduler/ttft_s" with
  | None -> Alcotest.fail "no TTFT histogram"
  | Some s ->
    Alcotest.(check int) "TTFT sample per request"
      (List.length r.Hnlpu.Scheduler.completed_requests)
      s.Metrics.count

(* QCheck: over random workload seeds, every span is well-formed and every
   per-request child span nests inside its track's "request" parent. *)
let prop_spans_wellformed =
  QCheck.Test.make ~name:"scheduler spans are well-formed and nested" ~count:10
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let obs = Sink.create () in
      ignore (sched_run ~obs seed);
      let spans = spans_of (Sink.events obs) in
      List.for_all (fun (_, _, ts, dur) -> dur >= 0.0 && Float.is_finite ts) spans
      && List.for_all
           (fun ((tr : Event.track), name, ts, dur) ->
             name = "request"
             || tr.Event.process <> "scheduler"
             || not (String.length tr.Event.thread >= 3
                     && String.sub tr.Event.thread 0 3 = "req")
             ||
             match
               List.find_opt
                 (fun (tr', name', _, _) -> tr' = tr && name' = "request")
                 spans
             with
             | None -> false
             | Some (_, _, pts, pdur) ->
               ts >= pts -. 1e-12 && ts +. dur <= pts +. pdur +. 1e-12)
           spans)

(* --- Pipeline-trace instrumentation ------------------------------------------ *)

let test_pipeline_trace_obs () =
  let obs = Sink.create () in
  let t = Hnlpu.Trace.run ~tokens:40 ~obs ~obs_tokens:8 config in
  let spans =
    List.filter
      (fun ((tr : Event.track), _, _, _) -> tr.Event.process = "pipeline")
      (spans_of (Sink.events obs))
  in
  Alcotest.(check bool) "pipeline spans recorded" true (spans <> []);
  (* Spans sharing a (stage, slot) track must be disjoint in time. *)
  let by_track = Hashtbl.create 64 in
  List.iter
    (fun (tr, _, ts, dur) ->
      Hashtbl.replace by_track tr
        ((ts, dur) :: (try Hashtbl.find by_track tr with Not_found -> [])))
    spans;
  Hashtbl.iter
    (fun _ intervals ->
      let sorted = List.sort compare intervals in
      ignore
        (List.fold_left
           (fun prev_end (ts, dur) ->
             if ts < prev_end -. 1e-12 then
               Alcotest.fail "overlapping spans on one pipeline track";
             ts +. dur)
           neg_infinity sorted))
    by_track;
  match Metrics.histogram (Sink.metrics obs) "pipeline/stage_utilization" with
  | None -> Alcotest.fail "no stage-utilization histogram"
  | Some s ->
    Alcotest.(check int) "one utilization sample per stage"
      (List.length t.Hnlpu.Trace.stage_stats)
      s.Metrics.count

(* --- NoC instrumentation ------------------------------------------------------ *)

let test_noc_obs () =
  let group = Hnlpu.Topology.col_group 0 in
  let bytes = 4096 in
  let plan = Hnlpu.Schedule.all_reduce ~group ~bytes in
  let vals =
    List.map (fun c -> (c, Array.init 6 (fun i -> float_of_int (c * 10 + i)))) group
  in
  let plain = Hnlpu.Schedule.run_all_reduce ~plan ~group vals in
  let obs = Sink.create () in
  let instrumented = Hnlpu.Schedule.run_all_reduce ~plan ~obs ~group vals in
  Alcotest.(check bool) "values unaffected by the sink" true
    (plain = instrumented);
  let m = Sink.metrics obs in
  let plan_bytes =
    List.fold_left
      (fun acc step ->
        List.fold_left (fun a tr -> a + tr.Hnlpu.Schedule.bytes) acc step)
      0 plan
  in
  Alcotest.(check (option (float 0.0))) "bytes tally matches the plan"
    (Some (float_of_int plan_bytes))
    (Metrics.counter m "noc/bytes_sent");
  Alcotest.(check (option (float 0.0))) "transfer count"
    (Some (float_of_int (Hnlpu.Schedule.transfer_count plan)))
    (Metrics.counter m "noc/transfers");
  let makespan = Hnlpu.Schedule.makespan plan in
  (match Metrics.gauge m "noc/makespan_s" with
  | None -> Alcotest.fail "no makespan gauge"
  | Some g -> Alcotest.(check (float 1e-12)) "makespan gauge agrees" makespan g);
  (* Span stream covers the same window the closed-form makespan claims. *)
  let last_end =
    List.fold_left
      (fun acc e -> Float.max acc (Event.end_s e))
      0.0 (Sink.events obs)
  in
  Alcotest.(check bool) "spans end by the makespan" true
    (last_end <= makespan +. 1e-9)

(* --- Thermal instrumentation --------------------------------------------------- *)

let test_thermal_obs () =
  let obs = Sink.create () in
  let th = Hnlpu.Thermal.analyze ~obs () in
  let m = Sink.metrics obs in
  (match Metrics.gauge m "thermal/peak_w_per_mm2" with
  | None -> Alcotest.fail "no peak gauge"
  | Some g ->
    Alcotest.(check (float 1e-12)) "peak gauge matches the result"
      th.Hnlpu.Thermal.peak_w_per_mm2 g);
  Alcotest.(check bool) "operating-point instant recorded" true
    (List.exists
       (function
         | Event.Instant { name = "operating_point"; _ } -> true
         | _ -> false)
       (Sink.events obs))

(* --- The combined timeline ------------------------------------------------------ *)

let test_combined_timeline () =
  let obs = Sink.create () in
  ignore (sched_run ~obs 1);
  ignore (Hnlpu.Trace.run ~tokens:20 ~obs ~obs_tokens:4 config);
  let group = Hnlpu.Topology.col_group 0 in
  ignore
    (Hnlpu.Schedule.run_all_reduce ~obs ~group
       (List.map (fun c -> (c, [| 1.0 |])) group));
  let span_processes =
    List.sort_uniq compare
      (List.filter_map
         (function
           | Event.Span { track; _ } -> Some track.Event.process
           | _ -> None)
         (Sink.events obs))
  in
  Alcotest.(check bool) "spans from at least three subsystems" true
    (List.length span_processes >= 3);
  (* And the whole stream still exports as strict JSON. *)
  match parse_json (Chrome_trace.to_json (Sink.events obs)) with
  | Obj _ -> ()
  | _ -> Alcotest.fail "trace export is not a JSON object"

(* --- Sketch: bounded-memory deterministic quantiles --------------------------- *)

let feed_sketch xs =
  let sk = Sketch.create () in
  Array.iter (Sketch.observe sk) xs;
  sk

(* |sketch - exact| within the documented bound: 1/64 relative plus the
   2^-64 zero-bucket absolute term, plus an fp-rounding whisker.  All
   generators below produce non-negative samples, where the mli's
   general bound collapses to this form. *)
let within_bound exact est =
  Float.abs (est -. exact)
  <= (Sketch.relative_error *. Float.abs exact)
     +. Float.ldexp 1.0 (-64)
     +. (1e-12 *. Float.abs exact)

let test_sketch_empty_and_singleton () =
  let sk = Sketch.create () in
  Alcotest.(check int) "empty count" 0 (Sketch.count sk);
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Sketch.quantile sk 0.5));
  Sketch.observe sk 7.25;
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "singleton exact at p=%g" p)
        7.25 (Sketch.quantile sk p))
    [ 0.0; 0.5; 0.95; 0.99; 1.0 ];
  Alcotest.(check (float 0.0)) "singleton mean" 7.25 (Sketch.mean sk)

let test_sketch_constant_and_extremes () =
  let sk = feed_sketch (Array.make 1000 3.14) in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "constant exact at p=%g" p)
        3.14 (Sketch.quantile sk p))
    [ 0.0; 0.5; 0.99; 1.0 ];
  let xs = Array.init 999 (fun i -> float_of_int (i + 1)) in
  let sk = feed_sketch xs in
  (* p=0 and p=1 are the exactly tracked min and max. *)
  Alcotest.(check (float 0.0)) "p0 is min" 1.0 (Sketch.quantile sk 0.0);
  Alcotest.(check (float 0.0)) "p1 is max" 999.0 (Sketch.quantile sk 1.0);
  Alcotest.(check (float 0.0)) "min_v" 1.0 (Sketch.min_v sk);
  Alcotest.(check (float 0.0)) "max_v" 999.0 (Sketch.max_v sk)

let test_sketch_rejects_bad_input () =
  let sk = Sketch.create () in
  Alcotest.(check bool) "nan sample raises" true
    (match Sketch.observe sk nan with
    | exception Invalid_argument _ -> true
    | () -> false);
  Sketch.observe sk 1.0;
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "p=%g raises" p)
        true
        (match Sketch.quantile sk p with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ -0.1; 1.5; nan ]

let test_sketch_deterministic_export () =
  let xs = Array.init 5000 (fun i -> exp (float_of_int (i mod 97) /. 13.0)) in
  let a = feed_sketch xs and b = feed_sketch xs in
  Alcotest.(check string) "same inputs, byte-identical JSON"
    (Sketch.to_json a) (Sketch.to_json b);
  match parse_json (Sketch.to_json a) with
  | Obj _ ->
    Alcotest.(check int) "exported count" 5000
      (int_of_float (as_num (member "count" (parse_json (Sketch.to_json a)))))
  | _ -> Alcotest.fail "sketch export is not a JSON object"

let test_sketch_merge_order_insensitive () =
  let rng = Hnlpu.Rng.create 99 in
  let xs = Array.init 4000 (fun _ -> exp (4.0 *. Hnlpu.Rng.float rng 1.0)) in
  let part i = Array.init 1000 (fun j -> xs.((i * 1000) + j)) in
  let shards () = Array.init 4 (fun i -> feed_sketch (part i)) in
  let combined = feed_sketch xs in
  let fwd = Sketch.create () and rev = Sketch.create () in
  let s1 = shards () and s2 = shards () in
  for i = 0 to 3 do
    Sketch.merge_into ~into:fwd s1.(i);
    Sketch.merge_into ~into:rev s2.(3 - i)
  done;
  List.iter
    (fun p ->
      let q = Sketch.quantile combined p in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "merge = combined at p=%g" p)
        q (Sketch.quantile fwd p);
      Alcotest.(check (float 0.0))
        (Printf.sprintf "reverse merge = combined at p=%g" p)
        q (Sketch.quantile rev p))
    [ 0.0; 0.5; 0.95; 0.99; 1.0 ];
  Alcotest.(check int) "count" (Sketch.count combined) (Sketch.count fwd);
  Alcotest.(check (float 0.0)) "min" (Sketch.min_v combined) (Sketch.min_v fwd);
  Alcotest.(check (float 0.0)) "max" (Sketch.max_v combined) (Sketch.max_v fwd);
  Alcotest.(check (float 1e-9)) "mean within fp of combined"
    (Sketch.mean combined) (Sketch.mean fwd)

let test_sketch_memory_flat () =
  let small = feed_sketch (Array.init 100 (fun i -> float_of_int (i + 1))) in
  let rng = Hnlpu.Rng.create 3 in
  let big =
    feed_sketch
      (Array.init 100_000 (fun _ -> exp (10.0 *. (Hnlpu.Rng.float rng 1.0 -. 0.5))))
  in
  Alcotest.(check int) "live words independent of sample count"
    (Sketch.live_words small) (Sketch.live_words big);
  (* Exact-mode registries grow with samples; sketch-backed ones don't. *)
  let observe_n m ~exact n =
    for i = 1 to n do
      Metrics.observe m ~exact "h" (float_of_int i)
    done
  in
  let sk_m = Metrics.create () and ex_m = Metrics.create () in
  observe_n sk_m ~exact:false 50_000;
  observe_n ex_m ~exact:true 50_000;
  let sk_baseline = Metrics.live_words sk_m in
  observe_n sk_m ~exact:false 50_000;
  Alcotest.(check int) "sketch registry flat under 2x samples" sk_baseline
    (Metrics.live_words sk_m);
  Alcotest.(check bool) "exact registry is >10x larger" true
    (Metrics.live_words ex_m > 10 * sk_baseline)

let test_sketch_tiny_and_overflow () =
  (* Below 2^-64 everything collapses into the zero bucket (absolute
     error <= 2^-64); at or above 2^64 the overflow bucket reports the
     exact observed extreme. *)
  let sk = feed_sketch [| 0.0; 1e-30; 4.9e-324; 1e-22 |] in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "tiny magnitudes within 2^-64 at p=%g" p)
        true
        (Float.abs (Sketch.quantile sk p) <= Float.ldexp 1.0 (-64)))
    [ 0.25; 0.5; 0.75 ];
  let sk = feed_sketch [| 1.0; Float.ldexp 1.0 80; Float.ldexp 1.0 100 |] in
  Alcotest.(check (float 0.0)) "overflow max exact"
    (Float.ldexp 1.0 100) (Sketch.quantile sk 1.0);
  let sk = feed_sketch [| -2.5; -1.0; 1.0; 2.5 |] in
  Alcotest.(check bool) "negative median within bound" true
    (within_bound 0.0 (Sketch.quantile sk 0.5));
  Alcotest.(check (float 0.0)) "negative min exact" (-2.5)
    (Sketch.quantile sk 0.0)

(* QCheck: sketch p50/p95/p99 stay within the documented error bound of
   the exact Stats.percentile over adversarial sample distributions. *)

let quantile_points = [ 0.5; 0.95; 0.99 ]

let sketch_agrees_with_exact xs =
  let sk = feed_sketch xs in
  List.for_all
    (fun p -> within_bound (Hnlpu.Stats.percentile xs p) (Sketch.quantile sk p))
    quantile_points

let prop_sketch_heavy_tail =
  QCheck.Test.make ~name:"sketch vs exact: heavy tail (lognormal-ish)" ~count:50
    QCheck.(pair (int_range 1 3000) int)
    (fun (n, seed) ->
      let rng = Hnlpu.Rng.create seed in
      sketch_agrees_with_exact
        (Array.init n (fun _ ->
             exp (10.0 *. (Hnlpu.Rng.float rng 1.0 -. 0.5)))))

let prop_sketch_bimodal =
  QCheck.Test.make ~name:"sketch vs exact: bimodal with a 1e6 gap" ~count:50
    QCheck.(pair (int_range 1 3000) int)
    (fun (n, seed) ->
      let rng = Hnlpu.Rng.create seed in
      sketch_agrees_with_exact
        (Array.init n (fun _ ->
             if Hnlpu.Rng.float rng 1.0 < 0.5 then
               1e-3 *. (1.0 +. Hnlpu.Rng.float rng 0.5)
             else 1e3 *. (1.0 +. Hnlpu.Rng.float rng 0.5))))

let prop_sketch_constant =
  QCheck.Test.make ~name:"sketch vs exact: constant arrays" ~count:100
    QCheck.(pair (int_range 1 2000) (float_range 1e-12 1e12))
    (fun (n, c) -> sketch_agrees_with_exact (Array.make n c))

let prop_sketch_denormal_adjacent =
  QCheck.Test.make
    ~name:"sketch vs exact: denormal-adjacent magnitudes around 2^-64"
    ~count:50
    QCheck.(pair (int_range 1 2000) int)
    (fun (n, seed) ->
      let rng = Hnlpu.Rng.create seed in
      (* Magnitudes from 2^-80 to 2^-50: straddles the zero-bucket
         threshold, including true denormal territory. *)
      sketch_agrees_with_exact
        (Array.init n (fun _ ->
             Float.ldexp (1.0 +. Hnlpu.Rng.float rng 1.0)
               (-80 + int_of_float (30.0 *. Hnlpu.Rng.float rng 1.0)))))

let prop_sketch_merge_split_invariant =
  QCheck.Test.make
    ~name:"sketch merge of any split = combined feed (quantiles exact)"
    ~count:50
    QCheck.(triple (int_range 2 2000) (int_range 0 10_000) int)
    (fun (n, cut, seed) ->
      let rng = Hnlpu.Rng.create seed in
      let xs =
        Array.init n (fun _ -> exp (8.0 *. (Hnlpu.Rng.float rng 1.0 -. 0.5)))
      in
      let k = cut mod n in
      let a = feed_sketch (Array.sub xs 0 k) in
      let b = feed_sketch (Array.sub xs k (n - k)) in
      Sketch.merge_into ~into:a b;
      let c = feed_sketch xs in
      Sketch.count a = Sketch.count c
      && List.for_all
           (fun p -> Sketch.quantile a p = Sketch.quantile c p)
           (0.0 :: 1.0 :: quantile_points))

(* --- Gauge stamps: shard-merge order cannot change gauges --------------------- *)

let test_gauge_stamp_merge () =
  let mk stamp v =
    let m = Metrics.create () in
    Metrics.set_stamped m ~stamp "g" v;
    m
  in
  let merged first second =
    let into = Metrics.create () in
    Metrics.merge_into ~into first;
    Metrics.merge_into ~into second;
    (Metrics.gauge into "g", Metrics.gauge_stamp into "g")
  in
  let a = mk 5.0 1.0 and b = mk 2.0 9.0 in
  (* Latest stamp wins in both merge orders, even though the earlier
     stamp carries the larger value. *)
  Alcotest.(check (pair (option (float 0.0)) (option (float 0.0))))
    "a then b keeps the latest-stamped value"
    (Some 1.0, Some 5.0) (merged a b);
  Alcotest.(check (pair (option (float 0.0)) (option (float 0.0))))
    "b then a keeps the latest-stamped value"
    (Some 1.0, Some 5.0) (merged b a);
  (* Equal stamps: ties resolve to the larger value, same both ways. *)
  let c = mk 3.0 4.0 and d = mk 3.0 6.0 in
  Alcotest.(check (option (float 0.0))) "tie to larger (c,d)" (Some 6.0)
    (fst (merged c d));
  Alcotest.(check (option (float 0.0))) "tie to larger (d,c)" (Some 6.0)
    (fst (merged d c));
  (* An unstamped set carries stamp -inf, so any stamped write beats it. *)
  let u = Metrics.create () in
  Metrics.set u "g" 100.0;
  Alcotest.(check (option (float 0.0))) "stamped beats unstamped" (Some 1.0)
    (fst (merged u a));
  Alcotest.(check (option (float 0.0))) "unstamped loses either way" (Some 1.0)
    (fst (merged a u))

let test_sink_sample_stamps () =
  let o = Sink.create ~events:false () in
  Sink.sample o ~track ~name:"q" ~ts_s:1.5 10.0;
  Sink.sample o ~track ~name:"q" ~ts_s:4.5 2.0;
  Alcotest.(check (option (float 0.0))) "value is the last sample" (Some 2.0)
    (Metrics.gauge (Sink.metrics o) "q");
  Alcotest.(check (option (float 0.0))) "stamp is the sample time" (Some 4.5)
    (Metrics.gauge_stamp (Sink.metrics o) "q")

let test_scheduler_shard_merge_order_free () =
  (* Two different runs merged in both orders: identical registries,
     including the stamped end-of-run gauges. *)
  let shard seed =
    let obs = Sink.create ~events:false () in
    ignore (sched_run ~obs seed);
    obs
  in
  let merge_json order =
    let into = Sink.create ~events:false () in
    List.iter (fun o -> Sink.merge_into ~into o) order;
    Metrics.to_json (Sink.metrics into)
  in
  let a = shard 5 and b = shard 17 in
  Alcotest.(check string) "merge order does not change merged metrics"
    (merge_json [ a; b ]) (merge_json [ b; a ])

(* --- Ring wraparound + counters-only parity ----------------------------------- *)

let test_ring_wraparound_metrics_parity () =
  (* A full sink whose ring is far too small (forced wraparound), a
     roomy full sink, and a counters-only sink must all report the same
     metric summaries for the same simulation: metric aggregation is
     independent of event retention. *)
  let run sink =
    ignore (sched_run ~obs:sink 29);
    Metrics.to_json (Sink.metrics sink)
  in
  let tiny = Sink.create ~capacity:8 () in
  let roomy = Sink.create () in
  let counters_only = Sink.create ~events:false () in
  let j_tiny = run tiny and j_roomy = run roomy and j_off = run counters_only in
  Alcotest.(check bool) "tiny ring actually wrapped" true
    (Sink.dropped tiny > 0);
  Alcotest.(check int) "tiny ring retains only its capacity" 8
    (List.length (Sink.events tiny));
  Alcotest.(check int) "counters-only retains nothing" 0
    (Sink.recorded counters_only);
  Alcotest.(check string) "wrapped ring, same metrics" j_roomy j_tiny;
  Alcotest.(check string) "counters-only, same metrics" j_roomy j_off;
  (* The sketch-backed histograms are included in that parity. *)
  match
    Metrics.histogram (Sink.metrics counters_only) "scheduler/ttft_s"
  with
  | None -> Alcotest.fail "no TTFT histogram on the counters-only sink"
  | Some s -> Alcotest.(check bool) "histogram populated" true (s.Metrics.count > 0)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hnlpu_obs"
    [
      ( "json",
        [
          Alcotest.test_case "parser is strict" `Quick test_parser_is_strict;
          Alcotest.test_case "combinators" `Quick test_json_combinators;
        ] );
      ("ring", [ Alcotest.test_case "bounds and order" `Quick test_ring ]);
      ( "metrics",
        [
          Alcotest.test_case "basic" `Quick test_metrics_basic;
          Alcotest.test_case "kind conflict" `Quick test_metrics_kind_conflict;
          Alcotest.test_case "strict json" `Quick test_metrics_json_strict;
        ] );
      ( "sink",
        [
          Alcotest.test_case "rejects bad spans" `Quick test_sink_rejects_bad_spans;
          Alcotest.test_case "capacity" `Quick test_sink_capacity;
        ] );
      ( "chrome-trace",
        [
          Alcotest.test_case "export" `Quick test_chrome_trace_export;
          Alcotest.test_case "jsonl" `Quick test_jsonl_export;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "no sink is bit-identical" `Quick
            test_no_sink_bit_identical;
          Alcotest.test_case "same seed exports identically" `Quick
            test_same_seed_export_identical;
          Alcotest.test_case "request spans" `Quick test_scheduler_spans;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "trace obs" `Quick test_pipeline_trace_obs ] );
      ("noc", [ Alcotest.test_case "all-reduce obs" `Quick test_noc_obs ]);
      ("thermal", [ Alcotest.test_case "gauges" `Quick test_thermal_obs ]);
      ( "end-to-end",
        [ Alcotest.test_case "combined timeline" `Quick test_combined_timeline ]
      );
      ( "sketch",
        [
          Alcotest.test_case "empty and singleton" `Quick
            test_sketch_empty_and_singleton;
          Alcotest.test_case "constant and extremes" `Quick
            test_sketch_constant_and_extremes;
          Alcotest.test_case "rejects bad input" `Quick
            test_sketch_rejects_bad_input;
          Alcotest.test_case "deterministic export" `Quick
            test_sketch_deterministic_export;
          Alcotest.test_case "merge order-insensitive" `Quick
            test_sketch_merge_order_insensitive;
          Alcotest.test_case "memory flat" `Quick test_sketch_memory_flat;
          Alcotest.test_case "tiny and overflow" `Quick
            test_sketch_tiny_and_overflow;
        ] );
      ( "gauge-stamps",
        [
          Alcotest.test_case "merge by latest stamp" `Quick
            test_gauge_stamp_merge;
          Alcotest.test_case "sink sample stamps" `Quick test_sink_sample_stamps;
          Alcotest.test_case "shard merge order free" `Quick
            test_scheduler_shard_merge_order_free;
        ] );
      ( "ring-parity",
        [
          Alcotest.test_case "wraparound metrics parity" `Quick
            test_ring_wraparound_metrics_parity;
        ] );
      qsuite "properties" [ prop_spans_wellformed ];
      qsuite "sketch-properties"
        [
          prop_sketch_heavy_tail;
          prop_sketch_bimodal;
          prop_sketch_constant;
          prop_sketch_denormal_adjacent;
          prop_sketch_merge_split_invariant;
        ];
    ]
