(* Properties of the streaming trace generator: the empirical arrival
   rate matches the configured process, heavy-tail exponents are
   recoverable from the emitted lengths, and a cursor restarted from the
   same seed replays the identical trace (the property Fleet's
   shard-local re-derivation of the shared trace rests on). *)

open Hnlpu

let pull_n spec seed n =
  let c = Arrivals.create ~seed spec in
  Array.init n (fun _ ->
      Arrivals.next c;
      ( Arrivals.arrival_s c,
        Arrivals.prefill_tokens c,
        Arrivals.decode_tokens c,
        Arrivals.user c ))

let empirical_rate spec seed n =
  let c = Arrivals.create ~seed spec in
  for _ = 1 to n do
    Arrivals.next c
  done;
  float n /. Arrivals.arrival_s c

let geo = Arrivals.Geometric { mean = 64 }

(* Rate specs sized so the observation window covers many diurnal
   periods / MMPP dwells — the long-run rate then concentrates. *)
let process_under_test = function
  | 0 -> (Arrivals.Poisson { rate_per_s = 50.0 }, 0.05)
  | 1 ->
      (* 20k arrivals at mean 50/s span ~400 s = 50 periods. *)
      ( Arrivals.Diurnal
          { mean_rate_per_s = 50.0; amplitude = 0.8; period_s = 8.0 },
        0.07 )
  | _ ->
      (* ~200 dwells over the window; states within 4x of each other. *)
      ( Arrivals.Mmpp
          { rates_per_s = [| 25.0; 50.0; 100.0 |]; mean_dwell_s = 2.0 },
        0.20 )

let test_rate_matches_process =
  QCheck.Test.make ~name:"empirical rate ~ configured long-run rate" ~count:30
    QCheck.(pair (int_range 0 2) (int_range 1 10_000))
    (fun (kind, seed) ->
      let process, tol = process_under_test kind in
      let spec = { (Arrivals.chat ~rate_per_s:1.0) with Arrivals.process } in
      let expected = Arrivals.mean_rate_per_s spec in
      let actual = empirical_rate spec seed 20_000 in
      abs_float (actual -. expected) /. expected < tol)

let test_pareto_tail_recovered =
  (* Hill estimator over the top order statistics recovers alpha. *)
  QCheck.Test.make ~name:"Pareto tail index recovered (Hill)" ~count:10
    QCheck.(pair (float_range 1.2 2.5) (int_range 1 10_000))
    (fun (alpha, seed) ->
      let spec =
        {
          (Arrivals.chat ~rate_per_s:100.0) with
          Arrivals.decode = Arrivals.Pareto { alpha; xmin = 50.0; cap = 10_000_000 };
        }
      in
      let n = 30_000 in
      let draws = pull_n spec seed n in
      let xs = Array.map (fun (_, _, d, _) -> float d) draws in
      Array.sort (fun a b -> compare b a) xs;
      let k = 1500 in
      let xk = xs.(k) in
      let s = ref 0.0 in
      for i = 0 to k - 1 do
        s := !s +. log (xs.(i) /. xk)
      done;
      let hill = float k /. !s in
      abs_float (hill -. alpha) /. alpha < 0.25)

let test_restart_equals_fresh =
  QCheck.Test.make ~name:"cursor restart = fresh cursor, same seed" ~count:30
    QCheck.(pair (int_range 0 2) (int_range 1 10_000))
    (fun (kind, seed) ->
      let process, _ = process_under_test kind in
      let spec =
        {
          (Arrivals.chat ~rate_per_s:1.0) with
          Arrivals.process;
          Arrivals.prefill = Arrivals.Pareto { alpha = 1.5; xmin = 8.0; cap = 4096 };
        }
      in
      pull_n spec seed 500 = pull_n spec seed 500)

let test_arrivals_monotone =
  QCheck.Test.make ~name:"arrival times strictly nondecreasing" ~count:20
    QCheck.(pair (int_range 0 2) (int_range 1 10_000))
    (fun (kind, seed) ->
      let process, _ = process_under_test kind in
      let spec = { (Arrivals.chat ~rate_per_s:1.0) with Arrivals.process } in
      let tr = pull_n spec seed 2_000 in
      let ok = ref true in
      for i = 1 to Array.length tr - 1 do
        let t0, _, _, _ = tr.(i - 1) and t1, _, _, _ = tr.(i) in
        if t1 < t0 then ok := false
      done;
      !ok)

(* --- unit checks ---------------------------------------------------------- *)

let test_with_mean_rate () =
  List.iter
    (fun kind ->
      let process, _ = process_under_test kind in
      let spec = { (Arrivals.chat ~rate_per_s:1.0) with Arrivals.process } in
      let rescaled = Arrivals.with_mean_rate spec 123.0 in
      Alcotest.(check (float 1e-9))
        "rescaled long-run rate" 123.0
        (Arrivals.mean_rate_per_s rescaled))
    [ 0; 1; 2 ]

let test_mean_tokens () =
  Alcotest.(check (float 1e-9))
    "geometric mean" 64.0
    (Arrivals.mean_tokens geo);
  Alcotest.(check (float 1e-9))
    "pareto mean (alpha 2)" 100.0
    (Arrivals.mean_tokens (Arrivals.Pareto { alpha = 2.0; xmin = 50.0; cap = 100_000 }));
  Alcotest.(check bool)
    "pareto alpha <= 1 diverges" true
    (Arrivals.mean_tokens (Arrivals.Pareto { alpha = 1.0; xmin = 50.0; cap = 100 })
     = infinity)

let test_lengths_positive_and_capped () =
  let spec =
    {
      (Arrivals.chat ~rate_per_s:10.0) with
      Arrivals.decode = Arrivals.Pareto { alpha = 1.1; xmin = 1.0; cap = 500 };
      Arrivals.users = 7;
    }
  in
  let tr = pull_n spec 42 5_000 in
  Array.iter
    (fun (_, p, d, u) ->
      assert (p >= 1);
      assert (d >= 1 && d <= 500);
      assert (u >= 0 && u < 7))
    tr;
  Alcotest.(check pass) "lengths in range" () ()

let test_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "rate <= 0" true
    (bad (fun () -> Arrivals.create ~seed:1 (Arrivals.chat ~rate_per_s:0.0)));
  Alcotest.(check bool) "amplitude >= 1" true
    (bad (fun () ->
         Arrivals.create ~seed:1
           {
             (Arrivals.chat ~rate_per_s:1.0) with
             Arrivals.process =
               Arrivals.Diurnal
                 { mean_rate_per_s = 1.0; amplitude = 1.0; period_s = 10.0 };
           }));
  Alcotest.(check bool) "empty MMPP" true
    (bad (fun () ->
         Arrivals.create ~seed:1
           {
             (Arrivals.chat ~rate_per_s:1.0) with
             Arrivals.process =
               Arrivals.Mmpp { rates_per_s = [||]; mean_dwell_s = 1.0 };
           }));
  Alcotest.(check bool) "users < 1" true
    (bad (fun () ->
         Arrivals.create ~seed:1 { (Arrivals.chat ~rate_per_s:1.0) with Arrivals.users = 0 }));
  Alcotest.(check bool) "pareto alpha <= 0" true
    (bad (fun () ->
         Arrivals.create ~seed:1
           {
             (Arrivals.chat ~rate_per_s:1.0) with
             Arrivals.prefill = Arrivals.Pareto { alpha = 0.0; xmin = 1.0; cap = 10 };
           }))

let () =
  Alcotest.run "hnlpu_arrivals"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            test_rate_matches_process;
            test_pareto_tail_recovered;
            test_restart_equals_fresh;
            test_arrivals_monotone;
          ] );
      ( "units",
        [
          Alcotest.test_case "with_mean_rate" `Quick test_with_mean_rate;
          Alcotest.test_case "mean_tokens" `Quick test_mean_tokens;
          Alcotest.test_case "length ranges" `Quick test_lengths_positive_and_capped;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
