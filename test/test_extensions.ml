(* Tests for the §8 discussion / future-work features: conditional
   decoding, sequence scoring & embedding, LoRA side-channel, yield
   Monte-Carlo & fault-tolerance economics, prefill chunking, Figure-11
   stage decomposition, ablations, and blue-green deployment. *)

open Hnlpu

let config = Config.gpt_oss_120b

(* --- Sampler extensions -------------------------------------------------- *)

let test_top_p_restricts () =
  let rng = Rng.create 1 in
  (* P = [0.6; 0.3; 0.1] roughly; p=0.7 keeps tokens 0 and 1. *)
  let logits = [| log 6.0; log 3.0; log 1.0 |] in
  for _ = 1 to 500 do
    let t = Sampler.sample rng (Sampler.Top_p (0.7, 1.0)) logits in
    Alcotest.(check bool) "in nucleus" true (t = 0 || t = 1)
  done

let test_top_p_full_mass_is_temperature () =
  let logits = [| 1.0; 2.0; 0.5; -1.0 |] in
  let a = Sampler.distribution (Sampler.Top_p (1.0, 1.0)) logits in
  let b = Sampler.distribution (Sampler.Temperature 1.0) logits in
  Alcotest.(check (array (float 1e-12))) "p=1 is plain softmax" b a

let test_top_p_distribution_normalized () =
  let d = Sampler.distribution (Sampler.Top_p (0.5, 0.7)) [| 3.0; 1.0; 0.0; -2.0 |] in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 d)

let test_top_p_validation () =
  Alcotest.(check bool) "p=0 rejected" true
    (try
       ignore (Sampler.distribution (Sampler.Top_p (0.0, 1.0)) [| 1.0 |]);
       false
     with Invalid_argument _ -> true)

let test_repetition_penalty () =
  let logits = [| 2.0; -1.0; 3.0 |] in
  let out = Sampler.with_repetition_penalty ~penalty:2.0 ~recent:[ 0; 1 ] logits in
  Alcotest.(check (float 1e-12)) "positive divided" 1.0 out.(0);
  Alcotest.(check (float 1e-12)) "negative multiplied" (-2.0) out.(1);
  Alcotest.(check (float 1e-12)) "untouched" 3.0 out.(2)

let test_repetition_penalty_validation () =
  Alcotest.(check bool) "penalty <= 1 rejected" true
    (try
       ignore (Sampler.with_repetition_penalty ~penalty:1.0 ~recent:[] [| 1.0 |]);
       false
     with Invalid_argument _ -> true)

let prop_top_p_simplex =
  QCheck.Test.make ~name:"top-p distribution on the simplex" ~count:100
    QCheck.(pair (float_range 0.05 1.0) (array_of_size (Gen.int_range 2 30) (float_range (-5.0) 5.0)))
    (fun (p, logits) ->
      let d = Sampler.distribution (Sampler.Top_p (p, 1.0)) logits in
      Array.for_all (fun q -> q >= 0.0 && q <= 1.0 +. 1e-9) d
      && Float.abs (Array.fold_left ( +. ) 0.0 d -. 1.0) < 1e-9)

(* --- Scoring / embedding -------------------------------------------------- *)

let make_tiny seed = Transformer.create (Weights.random (Rng.create seed) Config.tiny)

let test_score_negative_loglik () =
  let t = make_tiny 50 in
  let s = Transformer.score t [ 1; 2; 3; 4 ] in
  Alcotest.(check bool) (Printf.sprintf "score %.2f < 0" s) true (s < 0.0)

let test_score_greedy_sequence_likelier () =
  (* The greedy continuation must score at least as well as a perturbed one. *)
  let t = make_tiny 51 in
  let greedy =
    Transformer.generate (Rng.create 0) t ~prompt:[ 5 ] ~max_new_tokens:4 Sampler.Greedy
  in
  Transformer.reset t;
  let seq = 5 :: greedy in
  let s_greedy = Transformer.score t seq in
  let perturbed = match List.rev seq with _ :: rest -> List.rev (63 :: rest) | [] -> [] in
  let s_pert = Transformer.score t perturbed in
  Alcotest.(check bool)
    (Printf.sprintf "greedy %.3f >= perturbed %.3f" s_greedy s_pert)
    true (s_greedy >= s_pert)

let test_perplexity_bounds () =
  let t = make_tiny 52 in
  let p = Transformer.perplexity t [ 1; 2; 3; 4; 5 ] in
  (* Random weights can be worse than uniform, so perplexity may exceed
     the vocabulary size — but it must be finite and > 1. *)
  Alcotest.(check bool) (Printf.sprintf "ppl %.1f sane" p) true
    (p > 1.0 && Float.is_finite p && p < 1e4)

let test_embed_shape_and_determinism () =
  let t = make_tiny 53 in
  let e1 = Transformer.embed t [ 1; 2; 3 ] in
  let e2 = Transformer.embed t [ 1; 2; 3 ] in
  Alcotest.(check int) "hidden width" Config.tiny.Config.hidden (Array.length e1);
  Alcotest.(check (float 0.0)) "deterministic" 0.0 (Vec.max_abs_diff e1 e2);
  let e3 = Transformer.embed t [ 9; 8; 7 ] in
  Alcotest.(check bool) "different text, different embedding" true
    (Vec.max_abs_diff e1 e3 > 1e-9)

let test_score_validation () =
  let t = make_tiny 54 in
  Alcotest.(check bool) "one token rejected" true
    (try
       ignore (Transformer.score t [ 1 ]);
       false
     with Invalid_argument _ -> true)

(* --- LoRA ------------------------------------------------------------------ *)

let test_lora_starts_as_identity () =
  (* B initialized to zero: the adapter contributes nothing. *)
  let rng = Rng.create 60 in
  let l = Lora.create rng ~in_features:16 ~out_features:8 ~rank:2 in
  let x = Vec.gaussian rng 16 in
  Alcotest.(check (array (float 0.0))) "zero delta" (Array.make 8 0.0) (Lora.delta l x)

let test_lora_apply_matches_merged () =
  let rng = Rng.create 61 in
  let w = Mat.gaussian rng ~rows:16 ~cols:8 in
  let a = Mat.gaussian rng ~rows:16 ~cols:3 in
  let b = Mat.gaussian rng ~rows:3 ~cols:8 in
  let l = Lora.of_matrices ~a ~b () in
  let x = Vec.gaussian rng 16 in
  let via_apply = Lora.apply l ~base:(Mat.gemv w) x in
  let via_merged = Mat.gemv (Lora.merged l w) x in
  Alcotest.(check bool) "side-channel = merged re-spin" true
    (Vec.max_abs_diff via_apply via_merged < 1e-9)

let test_lora_on_hn_base () =
  (* The paper's actual proposal: hardwired HN bank + field-programmable
     low-rank side channel. *)
  let rng = Rng.create 62 in
  let w = Mat.gaussian rng ~rows:64 ~cols:16 in
  let hn = Hn_linear.of_matrix w in
  let a = Mat.gaussian rng ~rows:64 ~cols:4 in
  let b = Mat.gaussian rng ~rows:4 ~cols:16 in
  let l = Lora.of_matrices ~a ~b () in
  let x = Vec.gaussian rng 64 in
  let adapted_hw = Lora.apply l ~base:(Hn_linear.apply hn) x in
  let adapted_float = Lora.apply l ~base:(Mat.gemv (Hn_linear.dequantized hn)) x in
  let scale = Vec.norm2 adapted_float /. sqrt 16.0 in
  Alcotest.(check bool) "adapted HN tracks adapted float" true
    (Vec.max_abs_diff adapted_hw adapted_float /. Float.max scale 1e-12 < 0.05)

let test_lora_overhead_small () =
  let rng = Rng.create 63 in
  let l = Lora.create rng ~in_features:2880 ~out_features:2880 ~rank:8 in
  let o = Lora.parameter_overhead l ~in_features:2880 ~out_features:2880 in
  Alcotest.(check bool) (Printf.sprintf "overhead %.4f < 1%%" o) true (o < 0.01)

let test_side_channel_budget () =
  (* ~1% of HN capacity supports useful adapter ranks on gpt-oss. *)
  let r = Lora.Side_channel.max_rank config in
  Alcotest.(check bool) (Printf.sprintf "max uniform rank %d >= 4" r) true (r >= 4);
  Alcotest.(check bool) "supports rank 1" true (Lora.Side_channel.supports_rank config ~rank:1);
  Alcotest.(check bool) "rejects absurd rank" false
    (Lora.Side_channel.supports_rank config ~rank:4096)

let test_side_channel_area () =
  (* The side channel must stay a small fraction of the 573 mm² HN array. *)
  let a = Lora.Side_channel.area_overhead_mm2 config in
  Alcotest.(check bool) (Printf.sprintf "%.1f mm2 < 15%% of array" a) true
    (a > 0.0 && a < 0.15 *. 573.16)

(* --- Yield MC & fault tolerance ------------------------------------------------ *)

let test_yield_monte_carlo_matches_murphy () =
  let rng = Rng.create 70 in
  let mc =
    Yield.monte_carlo rng ~defect_density_per_cm2:0.11 ~die_area_mm2:827.08
      ~trials:200_000
  in
  let closed = Yield.murphy ~defect_density_per_cm2:0.11 ~die_area_mm2:827.08 in
  Alcotest.(check bool)
    (Printf.sprintf "MC %.4f vs Murphy %.4f" mc closed)
    true
    (Float.abs (mc -. closed) < 0.01)

let test_low_yield_wafer_bill () =
  (* §8: at 1% yield, the extra wafers cost ~$0.5M (1 system) / ~$22M (50). *)
  let bill dies = Yield.wafer_bill_at_yield Tech.n5 ~die_area_mm2:827.08 ~yield_rate:0.01 ~dies in
  let low = bill 16 and high = bill 800 in
  Alcotest.(check bool) (Printf.sprintf "low %.2fM ~ 0.5M" (low /. 1e6)) true
    (low > 0.3e6 && low < 0.7e6);
  Alcotest.(check bool) (Printf.sprintf "high %.1fM ~ 22M" (high /. 1e6)) true
    (high > 20.0e6 && high < 24.0e6)

let test_low_yield_marginal_vs_tco () =
  (* "...which are marginal compared to the TCO." *)
  let high_bill =
    Yield.wafer_bill_at_yield Tech.n5 ~die_area_mm2:827.08 ~yield_rate:0.01 ~dies:800
  in
  let tco = (Tco.hnlpu_column Tco.High).Tco.tco_dynamic.Tco.lo in
  Alcotest.(check bool) "under 20% of TCO" true (high_bill < 0.2 *. tco)

(* --- Prefill & stage decomposition ----------------------------------------------- *)

let test_prefill_chunking_helps () =
  let t1 = Perf.prefill_throughput_tokens_per_s config ~chunk:1 ~context:2048 in
  let t8 = Perf.prefill_throughput_tokens_per_s config ~chunk:8 ~context:2048 in
  let t64 = Perf.prefill_throughput_tokens_per_s config ~chunk:64 ~context:2048 in
  Alcotest.(check bool) "chunk 1 = decode rate" true
    (Approx.within_pct 1.0 ~expected:(Perf.throughput_tokens_per_s config ~context:2048)
       ~actual:t1);
  Alcotest.(check bool)
    (Printf.sprintf "chunk 8 (%.0f) > 2.5x decode" t8)
    true (t8 > 2.5 *. t1);
  Alcotest.(check bool) "diminishing returns" true
    (t64 > t8 && t64 < 16.0 *. t1)

let test_stage_times_sum_to_layer () =
  let stages = Perf.stage_times_s config ~context:2048 in
  Alcotest.(check int) "six stages" 6 (List.length stages);
  let sum = List.fold_left (fun a (_, t) -> a +. t) 0.0 stages in
  let expected =
    Perf.per_layer_comm_s config +. Perf.per_layer_projection_s config
    +. Perf.per_layer_nonlinear_s config
    +. Perf.per_layer_attention_s config ~context:2048
  in
  Alcotest.(check bool)
    (Printf.sprintf "sum %.3fus = layer %.3fus" (sum *. 1e6) (expected *. 1e6))
    true
    (Approx.close ~rel:1e-9 expected sum)

let test_stage_labels_agree () =
  (* Regression: stage_times_s used to carry its own label copies, which
     had drifted from stage_names ("S1 HN..." vs "S1: HN...").  The
     latencies must now be keyed by stage_names itself, verbatim. *)
  Alcotest.(check (list string)) "labels are stage_names" Perf.stage_names
    (List.map fst (Perf.stage_times_s config ~context:2048))

let test_stage_times_attention_grows () =
  let at ctx =
    List.assoc "S2: attention QK + stats exchange" (Perf.stage_times_s config ~context:ctx)
  in
  (* S2 carries a fixed stats-exchange cost, so the growth is bounded by
     the attention half; 5x between 2K and 512K is the conservative check. *)
  Alcotest.(check bool) "S2 grows with context" true (at 524288 > 5.0 *. at 2048)

(* --- Ablations --------------------------------------------------------------------- *)

let test_interconnect_ordering () =
  let rows = Ablation.interconnect_sweep config in
  Alcotest.(check int) "four options" 4 (List.length rows);
  let tp (r : Ablation.interconnect_row) = r.Ablation.throughput_tokens_per_s in
  (match rows with
  | [ pcie; cxl; nvlink; wafer ] ->
    Alcotest.(check bool) "faster links, faster system" true
      (tp pcie < tp cxl && tp cxl < tp nvlink && tp nvlink < tp wafer);
    Alcotest.(check bool) "comm share shrinks" true
      (wafer.Ablation.comm_fraction < pcie.Ablation.comm_fraction);
    Alcotest.(check bool) "comm still dominates even at wafer-scale (fixed latency)"
      true
      (wafer.Ablation.comm_fraction > 0.3)
  | _ -> Alcotest.fail "unexpected row count")

let test_programmability_tradeoff () =
  match Ablation.programmability config with
  | [ metal; field ] ->
    Alcotest.(check bool) "field needs ~10x silicon" true
      (field.Ablation.silicon_mm2 > 8.0 *. metal.Ablation.silicon_mm2);
    Alcotest.(check bool) "field re-spins are free" true (field.Ablation.respin_usd = 0.0);
    Alcotest.(check bool) "field masks cheaper (fully homogeneous)" true
      (field.Ablation.mask_nre_usd < metal.Ablation.mask_nre_usd);
    Alcotest.(check bool) "field throughput lower" true
      (field.Ablation.relative_throughput < 0.7)
  | _ -> Alcotest.fail "expected two variants"

let test_precision_tradeoff () =
  let rows = Ablation.precision_sweep config in
  match rows with
  | [ b4; b8; b16 ] ->
    Alcotest.(check bool) "fewer bits, faster projection" true
      (b4.Ablation.projection_us_per_layer < b8.Ablation.projection_us_per_layer
      && b8.Ablation.projection_us_per_layer < b16.Ablation.projection_us_per_layer);
    Alcotest.(check bool) "throughput follows" true
      (b4.Ablation.throughput_tokens_per_s > b16.Ablation.throughput_tokens_per_s)
  | _ -> Alcotest.fail "expected three widths"

let test_slack_tradeoff () =
  let rows = Ablation.slack_sweep (Rng.create 8) ~trials:100 () in
  let get s = List.find (fun r -> r.Ablation.slack = s) rows in
  Alcotest.(check bool) "no slack always fails" true ((get 1.0).Ablation.failure_rate > 0.9);
  Alcotest.(check bool) "generous slack never fails" true
    ((get 2.0).Ablation.failure_rate = 0.0);
  Alcotest.(check bool) "monotone-ish" true
    ((get 1.1).Ablation.failure_rate >= (get 1.5).Ablation.failure_rate)

(* --- Deployment ------------------------------------------------------------------------ *)

let test_blue_green_annual () =
  let bg = Deployment.blue_green Deployment.annual_plan in
  Alcotest.(check int) "two re-spins over 3 years" 2 bg.Deployment.total_updates;
  Alcotest.(check (float 1e-9)) "zero downtime" 0.0 bg.Deployment.downtime_weeks;
  let lo, hi = bg.Deployment.respin_bill in
  Alcotest.(check bool) "bill = 2 x Table 5 re-spin" true
    (Approx.within_pct 1.0 ~expected:(2.0 *. 18.53e6) ~actual:lo
    && Approx.within_pct 1.0 ~expected:(2.0 *. 37.06e6) ~actual:hi)

let test_blue_green_no_updates () =
  let bg =
    Deployment.blue_green
      { Deployment.annual_plan with Deployment.updates_per_year = 1.0 /. 3.0 }
  in
  Alcotest.(check int) "initial build only" 0 bg.Deployment.total_updates;
  Alcotest.(check (float 1e-9)) "no transitions" 0.0 bg.Deployment.weeks_in_transition

let test_volume_amortization () =
  let points = Deployment.volume_sweep [ 1; 10; 100 ] in
  match points with
  | [ p1; p10; p100 ] ->
    let cost p = snd p.Deployment.usd_per_mtoken in
    Alcotest.(check bool) "cost/token falls with volume" true
      (cost p10 < cost p1 && cost p100 < cost p10);
    Alcotest.(check bool) "H100 benchmark constant" true
      (p1.Deployment.h100_usd_per_mtoken = p100.Deployment.h100_usd_per_mtoken)
  | _ -> Alcotest.fail "expected three points"

let test_crossover_early () =
  (* §7.5: break-even at or near a single node; crossover must come within
     a handful of systems even pessimistically. *)
  match Deployment.crossover_systems () with
  | Some n -> Alcotest.(check bool) (Printf.sprintf "crossover at %d" n) true (n <= 5)
  | None -> Alcotest.fail "no crossover found"

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hnlpu_extensions"
    [
      ( "conditional-decoding",
        [
          Alcotest.test_case "top-p restricts" `Quick test_top_p_restricts;
          Alcotest.test_case "top-p p=1" `Quick test_top_p_full_mass_is_temperature;
          Alcotest.test_case "top-p normalized" `Quick test_top_p_distribution_normalized;
          Alcotest.test_case "top-p validation" `Quick test_top_p_validation;
          Alcotest.test_case "repetition penalty" `Quick test_repetition_penalty;
          Alcotest.test_case "penalty validation" `Quick test_repetition_penalty_validation;
        ] );
      qsuite "sampling properties" [ prop_top_p_simplex ];
      ( "scoring-embedding",
        [
          Alcotest.test_case "score is log-lik" `Quick test_score_negative_loglik;
          Alcotest.test_case "greedy scores best" `Quick test_score_greedy_sequence_likelier;
          Alcotest.test_case "perplexity bounds" `Quick test_perplexity_bounds;
          Alcotest.test_case "embedding" `Quick test_embed_shape_and_determinism;
          Alcotest.test_case "validation" `Quick test_score_validation;
        ] );
      ( "lora",
        [
          Alcotest.test_case "identity at init" `Quick test_lora_starts_as_identity;
          Alcotest.test_case "apply = merged" `Quick test_lora_apply_matches_merged;
          Alcotest.test_case "on HN base" `Quick test_lora_on_hn_base;
          Alcotest.test_case "overhead < 1%" `Quick test_lora_overhead_small;
          Alcotest.test_case "side-channel budget" `Quick test_side_channel_budget;
          Alcotest.test_case "side-channel area" `Quick test_side_channel_area;
        ] );
      ( "yield-fault-tolerance",
        [
          Alcotest.test_case "MC = Murphy" `Slow test_yield_monte_carlo_matches_murphy;
          Alcotest.test_case "1% yield wafer bill" `Quick test_low_yield_wafer_bill;
          Alcotest.test_case "marginal vs TCO" `Quick test_low_yield_marginal_vs_tco;
        ] );
      ( "prefill-stages",
        [
          Alcotest.test_case "chunking helps" `Quick test_prefill_chunking_helps;
          Alcotest.test_case "stages sum to layer" `Quick test_stage_times_sum_to_layer;
          Alcotest.test_case "stage labels agree" `Quick test_stage_labels_agree;
          Alcotest.test_case "attention stage grows" `Quick test_stage_times_attention_grows;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "interconnect" `Quick test_interconnect_ordering;
          Alcotest.test_case "programmability" `Quick test_programmability_tradeoff;
          Alcotest.test_case "precision" `Quick test_precision_tradeoff;
          Alcotest.test_case "slack" `Quick test_slack_tradeoff;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "blue-green annual" `Quick test_blue_green_annual;
          Alcotest.test_case "blue-green no updates" `Quick test_blue_green_no_updates;
          Alcotest.test_case "volume amortization" `Quick test_volume_amortization;
          Alcotest.test_case "crossover" `Quick test_crossover_early;
        ] );
    ]
