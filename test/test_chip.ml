open Hnlpu_chip
open Hnlpu_util

let config = Hnlpu_model.Config.gpt_oss_120b

(* --- Attention buffer ---------------------------------------------------- *)

let test_buffer_capacity () =
  (* §4.3: "320 MB" = 20,000 banks x 16 KB. *)
  Alcotest.(check int) "bank arithmetic" (20_000 * 16 * 1024)
    (Attention_buffer.capacity_bytes Attention_buffer.hnlpu);
  Alcotest.(check bool) "~320 MB" true
    (Approx.within_pct 3.0 ~expected:320.0e6
       ~actual:(float_of_int (Attention_buffer.capacity_bytes Attention_buffer.hnlpu)))

let test_buffer_bandwidth () =
  (* §7.1: sustains 80 TB/s. *)
  let bw = Attention_buffer.bandwidth_bytes_per_s Attention_buffer.hnlpu in
  Alcotest.(check bool) (Printf.sprintf "%.1f TB/s" (bw /. 1e12)) true
    (Approx.within_pct 1.0 ~expected:80.0e12 ~actual:bw)

let test_buffer_area () =
  (* Table 1: 136.11 mm². *)
  let a = Attention_buffer.area_mm2 Attention_buffer.hnlpu in
  Alcotest.(check bool) (Printf.sprintf "area %.1f" a) true
    (Approx.within_pct 3.0 ~expected:136.11 ~actual:a)

let test_buffer_kv_accounting () =
  (* Per chip per position: 2 KV heads x 64 x FP16 x (K and V) x 36 layers. *)
  Alcotest.(check int) "18,432 B/position" 18432
    (Attention_buffer.kv_bytes_per_position_per_chip config)

let test_buffer_onchip_capacity () =
  (* ~70K positions fit on chip; the paper sees no HBM stalls below 256K
     only because prefetch hides the fetches. *)
  let p = Attention_buffer.onchip_positions Attention_buffer.hnlpu config in
  Alcotest.(check bool) (Printf.sprintf "%d positions" p) true
    (p > 65_000 && p < 75_000)

let test_buffer_spill () =
  let none =
    Attention_buffer.spilled_bytes_per_token Attention_buffer.hnlpu config ~context:65536
  in
  Alcotest.(check (float 0.0)) "no spill at 64K" 0.0 none;
  let big =
    Attention_buffer.spilled_bytes_per_token Attention_buffer.hnlpu config ~context:524288
  in
  Alcotest.(check bool) (Printf.sprintf "512K spills %.2f GB" (big /. 1e9)) true
    (big > 1.5e9 && big < 2.5e9)

let test_buffer_spill_boundaries () =
  (* Regression: the spill arithmetic used integer division, silently
     dropping up to rows-1 positions right at the capacity edge. *)
  let rows = Hnlpu_noc.Topology.rows in
  let cap = Attention_buffer.onchip_positions Attention_buffer.hnlpu config in
  let per_pos = Attention_buffer.kv_bytes_per_position_per_chip config in
  let spill context =
    Attention_buffer.spilled_bytes_per_token Attention_buffer.hnlpu config ~context
  in
  Alcotest.(check (float 0.0)) "nothing at capacity" 0.0 (spill cap);
  Alcotest.(check (float 1e-6)) "one position past capacity"
    (float_of_int per_pos /. float_of_int rows)
    (spill (cap + 1));
  Alcotest.(check (float 1e-6)) "rows past capacity = one full position/chip"
    (float_of_int per_pos)
    (spill (cap + rows));
  Alcotest.(check bool) "negative context rejected" true
    (try
       ignore (spill (-1));
       false
     with Invalid_argument _ -> true)

(* --- HBM ----------------------------------------------------------------- *)

let test_hbm_capacity () =
  (* Appendix B: 8 stacks x 24 GB. *)
  Alcotest.(check (float 1.0)) "192 GB" 192.0e9 (Hbm.capacity_bytes Hbm.hnlpu)

let test_hbm_embedding_fits () =
  Alcotest.(check bool) "embedding tables fit" true (Hbm.fits_embedding Hbm.hnlpu config)

let test_hbm_stall_overlap () =
  Alcotest.(check (float 0.0)) "fully hidden" 0.0
    (Hbm.stall_s Hbm.hnlpu ~fetch_s:1.0e-6 ~compute_s:2.0e-6);
  Alcotest.(check (float 1e-18)) "residual" 1.0e-6
    (Hbm.stall_s Hbm.hnlpu ~fetch_s:3.0e-6 ~compute_s:2.0e-6)

(* --- VEX ------------------------------------------------------------------- *)

let test_vex_attention_linear () =
  let c1 = Vex.attention_cycles config ~context:65536 in
  let c2 = Vex.attention_cycles config ~context:131072 in
  Alcotest.(check bool) "linear in context" true
    (Approx.within_pct 1.0 ~expected:2.0 ~actual:(float_of_int c2 /. float_of_int c1))

let test_vex_attention_zero_context () =
  Alcotest.(check int) "empty context costs nothing" 0
    (Vex.attention_cycles config ~context:0)

let test_vex_nonlinear_positive () =
  Alcotest.(check bool) "nonlinear work" true (Vex.nonlinear_cycles config > 0)

(* --- HN array ---------------------------------------------------------------- *)

let test_hn_weights_per_chip () =
  let w = Hn_array.weights_per_chip config in
  Alcotest.(check bool) (Printf.sprintf "%.2fB weights" (w /. 1e9)) true
    (w > 7.0e9 && w < 7.5e9)

let test_hn_area () =
  (* Table 1: 573.16 mm². *)
  let a = Hn_array.area_mm2 config in
  Alcotest.(check bool) (Printf.sprintf "area %.1f" a) true
    (Approx.within_pct 2.0 ~expected:573.16 ~actual:a)

let test_hn_power () =
  (* Table 1: 76.92 W. *)
  let p = Hn_array.power_w config in
  Alcotest.(check bool) (Printf.sprintf "power %.1f" p) true
    (Approx.within_pct 2.0 ~expected:76.92 ~actual:p)

let test_hn_sparsity () =
  (* Top-4 of 128 experts: ~4% of weights active (§7.1). *)
  let f = Hn_array.active_fraction config in
  Alcotest.(check bool) (Printf.sprintf "active fraction %.3f" f) true
    (f > 0.02 && f < 0.06)

let test_hn_dense_counterfactual () =
  (* Without MoE sparsity the array would burn an order of magnitude more. *)
  Alcotest.(check bool) "dense >> sparse" true
    (Hn_array.power_if_dense_w config > 10.0 *. Hn_array.power_w config)

let test_hn_stream_cycles () =
  Alcotest.(check int) "2880 fp16 at 4B/cycle" ((2880 * 2 / 4) + 16)
    (Hn_array.stream_cycles ~bytes:(2880 * 2))

(* --- Interconnect engine / control ------------------------------------------ *)

let test_ice_power () =
  (* Table 1: 49.65 W; our link-energy derivation must land close. *)
  let p = Interconnect_engine.power_w () in
  Alcotest.(check bool) (Printf.sprintf "power %.1f" p) true
    (Approx.within_pct 3.0 ~expected:49.65 ~actual:p)

let test_pipeline_slots () =
  (* §5.2: 6 stages x 36 layers = 216. *)
  Alcotest.(check int) "216 slots" 216 (Control_unit.pipeline_slots config)

(* --- Floorplan (Table 1) ------------------------------------------------------ *)

let fp = Floorplan.table1 ()

let test_floorplan_total_area () =
  (* Table 1: 827.08 mm². *)
  Alcotest.(check bool)
    (Printf.sprintf "total area %.1f" fp.Floorplan.total_area_mm2)
    true
    (Approx.within_pct 1.0 ~expected:827.08 ~actual:fp.Floorplan.total_area_mm2)

let test_floorplan_total_power () =
  (* Table 1: 308.39 W. *)
  Alcotest.(check bool)
    (Printf.sprintf "total power %.1f" fp.Floorplan.total_power_w)
    true
    (Approx.within_pct 1.0 ~expected:308.39 ~actual:fp.Floorplan.total_power_w)

let test_floorplan_system_silicon () =
  (* Table 2: 13,232 mm² over 16 chips. *)
  let s = Floorplan.system_silicon_mm2 fp in
  Alcotest.(check bool) (Printf.sprintf "system %.0f mm2" s) true
    (Approx.within_pct 1.0 ~expected:13232.0 ~actual:s)

let test_floorplan_system_power () =
  (* Table 2: 6.9 kW. *)
  let p = Floorplan.system_power_w fp in
  Alcotest.(check bool) (Printf.sprintf "system %.2f kW" (p /. 1e3)) true
    (Approx.within_pct 1.0 ~expected:6900.0 ~actual:p)

let test_floorplan_hn_dominates () =
  (* Table 1: HN array is 69.3% of area. *)
  let share = Floorplan.area_share fp "HN Array" in
  Alcotest.(check bool) (Printf.sprintf "share %.3f" share) true
    (Approx.within_pct 2.0 ~expected:0.693 ~actual:share)

let test_floorplan_power_density () =
  (* §7.1: average 0.3 W/mm² — well within 2.5D cooling limits. *)
  let d = Floorplan.power_density_w_per_mm2 fp in
  Alcotest.(check bool) (Printf.sprintf "%.3f W/mm2" d) true (d > 0.2 && d < 0.5)

let test_floorplan_table_renders () =
  let s = Table.render (Floorplan.to_table fp) in
  Alcotest.(check bool) "has all blocks" true
    (Thelp.contains s "HN Array" && Thelp.contains s "Attention Buffer"
    && Thelp.contains s "Total")

let () =
  Alcotest.run "hnlpu_chip"
    [
      ( "attention-buffer",
        [
          Alcotest.test_case "capacity" `Quick test_buffer_capacity;
          Alcotest.test_case "bandwidth 80TB/s" `Quick test_buffer_bandwidth;
          Alcotest.test_case "area" `Quick test_buffer_area;
          Alcotest.test_case "kv accounting" `Quick test_buffer_kv_accounting;
          Alcotest.test_case "onchip capacity" `Quick test_buffer_onchip_capacity;
          Alcotest.test_case "spill" `Quick test_buffer_spill;
          Alcotest.test_case "spill boundaries" `Quick test_buffer_spill_boundaries;
        ] );
      ( "hbm",
        [
          Alcotest.test_case "capacity" `Quick test_hbm_capacity;
          Alcotest.test_case "embedding fits" `Quick test_hbm_embedding_fits;
          Alcotest.test_case "stall overlap" `Quick test_hbm_stall_overlap;
        ] );
      ( "vex",
        [
          Alcotest.test_case "attention linear" `Quick test_vex_attention_linear;
          Alcotest.test_case "zero context" `Quick test_vex_attention_zero_context;
          Alcotest.test_case "nonlinear" `Quick test_vex_nonlinear_positive;
        ] );
      ( "hn-array",
        [
          Alcotest.test_case "weights per chip" `Quick test_hn_weights_per_chip;
          Alcotest.test_case "area 573mm2" `Quick test_hn_area;
          Alcotest.test_case "power 77W" `Quick test_hn_power;
          Alcotest.test_case "MoE sparsity" `Quick test_hn_sparsity;
          Alcotest.test_case "dense counterfactual" `Quick test_hn_dense_counterfactual;
          Alcotest.test_case "stream cycles" `Quick test_hn_stream_cycles;
        ] );
      ( "engines",
        [
          Alcotest.test_case "ICE power" `Quick test_ice_power;
          Alcotest.test_case "pipeline slots" `Quick test_pipeline_slots;
        ] );
      ( "floorplan",
        [
          Alcotest.test_case "total area 827mm2" `Quick test_floorplan_total_area;
          Alcotest.test_case "total power 308W" `Quick test_floorplan_total_power;
          Alcotest.test_case "system silicon 13232mm2" `Quick test_floorplan_system_silicon;
          Alcotest.test_case "system power 6.9kW" `Quick test_floorplan_system_power;
          Alcotest.test_case "HN share 69.3%" `Quick test_floorplan_hn_dominates;
          Alcotest.test_case "power density" `Quick test_floorplan_power_density;
          Alcotest.test_case "table renders" `Quick test_floorplan_table_renders;
        ] );
    ]
