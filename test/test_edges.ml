(* Edge-case hardening across the utility and substrate layers: inputs at
   boundaries, rejection paths, and formatting corners not covered by the
   feature suites. *)

open Hnlpu_util

let raises f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

(* --- Units formatting ---------------------------------------------------- *)

let test_units_time_scales () =
  Alcotest.(check string) "us" "4.00us" (Units.seconds 4.0e-6);
  Alcotest.(check string) "ms" "1.50ms" (Units.seconds 1.5e-3);
  Alcotest.(check string) "ns" "90.00ns" (Units.seconds 90.0e-9)

let test_units_zero_and_negative () =
  Alcotest.(check string) "zero" "0.00" (Units.si 0.0);
  Alcotest.(check bool) "negative carries sign" true
    (String.length (Units.si (-2.5e6)) > 0 && (Units.si (-2.5e6)).[0] = '-')

let test_units_extremes_fall_back () =
  (* Outside the prefix table: scientific notation, no exception. *)
  Alcotest.(check bool) "huge" true (String.length (Units.si 1e21) > 0);
  Alcotest.(check bool) "tiny" true (String.length (Units.si 1e-19) > 0)

let test_units_percent_digits () =
  Alcotest.(check string) "two digits" "12.35%" (Units.percent ~digits:2 0.123456)

(* --- Stats edges ----------------------------------------------------------- *)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.mean s));
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Stats.variance s))

let test_stats_single () =
  let s = Stats.create () in
  Stats.add s 5.0;
  Alcotest.(check (float 0.0)) "mean" 5.0 (Stats.mean s);
  Alcotest.(check bool) "variance undefined" true (Float.is_nan (Stats.variance s))

let test_stats_percentile_validation () =
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Stats.percentile [||] 0.5));
  Alcotest.(check bool) "p>1" true (raises (fun () -> Stats.percentile [| 1.0 |] 1.5))

(* --- Rng edges --------------------------------------------------------------- *)

let test_rng_choose () =
  let r = Rng.create 1 in
  Alcotest.(check int) "singleton" 7 (Rng.choose r [| 7 |]);
  Alcotest.(check bool) "empty raises" true (raises (fun () -> Rng.choose r [||]))

let test_rng_int_validation () =
  let r = Rng.create 2 in
  Alcotest.(check bool) "zero bound" true (raises (fun () -> Rng.int r 0))

let test_rng_copy_diverges_from_split () =
  let a = Rng.create 3 in
  let b = Rng.copy a in
  Alcotest.(check int64) "copies replay" (Rng.next_int64 a) (Rng.next_int64 b)

(* --- Chart edges ---------------------------------------------------------------- *)

let test_chart_empty_rejected () =
  Alcotest.(check bool) "bar" true (raises (fun () -> Chart.bar []));
  Alcotest.(check bool) "stacked" true
    (raises (fun () -> Chart.stacked ~legend:[ "a" ] []))

let test_chart_single_value () =
  let s = Chart.bar [ ("only", 5.0) ] in
  Alcotest.(check bool) "renders" true (Thelp.contains s "only")

let test_chart_sparkline_flat () =
  (* All-equal input must not divide by zero. *)
  let s = Chart.sparkline [| 2.0; 2.0; 2.0 |] in
  Alcotest.(check int) "length" 3 (String.length s)

(* --- Fp4 / Gemv boundary widths --------------------------------------------------- *)

let test_gemv_min_width () =
  let open Hnlpu_neuron in
  let rng = Rng.create 5 in
  let g = Gemv.random rng ~in_features:4 ~out_features:1 ~act_bits:2 in
  let x = Gemv.random_activations rng g in
  let me, _ = Metal_embedding.run (Metal_embedding.make ~slack:16.0 g) x in
  Alcotest.(check (array int)) "2-bit activations" (Gemv.reference g x) me

let test_bitserial_width_bounds () =
  let open Hnlpu_fp4 in
  Alcotest.(check bool) "bits=1 rejected" true
    (raises (fun () -> Bitserial.planes ~bits:1 [| 0 |]));
  Alcotest.(check bool) "bits=33 rejected" true
    (raises (fun () -> Bitserial.planes ~bits:33 [| 0 |]))

let test_csa_width_bounds () =
  let open Hnlpu_fp4 in
  Alcotest.(check bool) "width 0 rejected" true
    (raises (fun () -> Csa.reduce ~width:0 [| 1 |]));
  Alcotest.(check bool) "operand too wide rejected" true
    (raises (fun () -> Csa.reduce ~width:4 [| 16 |]))

(* --- Config/scheduler misc ---------------------------------------------------------- *)

let test_scheduler_workload_validation () =
  let open Hnlpu_system in
  Alcotest.(check bool) "n=0" true
    (raises (fun () ->
         Scheduler.workload (Rng.create 0) ~n:0 ~rate_per_s:1.0 ~mean_prefill:1
           ~mean_decode:1))

let test_perf_zero_context () =
  (* Decoding the very first token: no cached positions, attention free. *)
  let b =
    Hnlpu_system.Perf.token_breakdown Hnlpu_model.Config.gpt_oss_120b ~context:0
  in
  Alcotest.(check (float 0.0)) "no attention" 0.0 b.Hnlpu_system.Perf.attention_s;
  Alcotest.(check bool) "comm still paid" true (b.Hnlpu_system.Perf.comm_s > 0.0)

let test_topology_validation () =
  let open Hnlpu_noc in
  Alcotest.(check bool) "bad chip" true (raises (fun () -> Topology.row_of 16));
  Alcotest.(check bool) "bad group" true (raises (fun () -> Topology.col_group 4))

let test_table_csv_empty_rows () =
  let t = Table.create ~headers:[ "a" ] in
  let csv = Table.to_csv t in
  Alcotest.(check string) "header only" "a\n" csv

let () =
  Alcotest.run "hnlpu_edges"
    [
      ( "units",
        [
          Alcotest.test_case "time scales" `Quick test_units_time_scales;
          Alcotest.test_case "zero/negative" `Quick test_units_zero_and_negative;
          Alcotest.test_case "extremes" `Quick test_units_extremes_fall_back;
          Alcotest.test_case "percent digits" `Quick test_units_percent_digits;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "single" `Quick test_stats_single;
          Alcotest.test_case "percentile validation" `Quick test_stats_percentile_validation;
        ] );
      ( "rng",
        [
          Alcotest.test_case "choose" `Quick test_rng_choose;
          Alcotest.test_case "int validation" `Quick test_rng_int_validation;
          Alcotest.test_case "copy replays" `Quick test_rng_copy_diverges_from_split;
        ] );
      ( "chart",
        [
          Alcotest.test_case "empty rejected" `Quick test_chart_empty_rejected;
          Alcotest.test_case "single value" `Quick test_chart_single_value;
          Alcotest.test_case "flat sparkline" `Quick test_chart_sparkline_flat;
        ] );
      ( "substrate-bounds",
        [
          Alcotest.test_case "min-width gemv" `Quick test_gemv_min_width;
          Alcotest.test_case "bitserial bounds" `Quick test_bitserial_width_bounds;
          Alcotest.test_case "csa bounds" `Quick test_csa_width_bounds;
        ] );
      ( "misc",
        [
          Alcotest.test_case "workload validation" `Quick test_scheduler_workload_validation;
          Alcotest.test_case "zero context" `Quick test_perf_zero_context;
          Alcotest.test_case "topology validation" `Quick test_topology_validation;
          Alcotest.test_case "csv empty" `Quick test_table_csv_empty_rows;
        ] );
    ]
