(* PAR-ESCAPE fixture: mutable state captured and written inside
   closures handed to the Par combinators — the exact shape of the PR 6
   pool-copy bug (workers mutated state the caller never saw; here,
   tasks race on state every worker sees). *)

module Par = Hnlpu_par.Par

let racy_sum xs =
  let total = ref 0.0 in
  (* Captured ref mutated from every task: tasks race on [total] and
     the accumulation order depends on the scheduler. *)
  let _ =
    Par.parallel_map
      (fun x ->
        total := !total +. x;
        x)
      xs
  in
  !total

let clobber_slot xs =
  let out = Array.make 1 0.0 in
  (* Captured array written at a fixed index: every task writes slot 0. *)
  let _ = Par.parallel_map (fun x -> out.(0) <- x; x) xs in
  out.(0)

type cell = { mutable last : float }

let racy_field xs =
  let c = { last = 0.0 } in
  (* Mutable field of a captured record written per task. *)
  let _ = Par.parallel_map (fun x -> c.last <- x; x) xs in
  c.last
