(* DET-SRC fixture: every nondeterminism source the sweep layer bans.
   The Hashtbl-order dependence is the canonical seeded bug (satellite
   spec): the fold result depends on bucket order, which is unspecified,
   so two runs can disagree even on identical inputs. *)

let order_dependent_sum tbl =
  (* Hashtbl.fold visits bindings in unspecified order; string concat
     makes that order observable in the result. *)
  Hashtbl.fold (fun k v acc -> acc ^ k ^ string_of_int v) tbl ""

let observe_all tbl =
  let seen = ref [] in
  Hashtbl.iter (fun k _ -> seen := k :: !seen) tbl;
  !seen

let jitter () =
  (* Stdlib Random: global mutable state, not derived from the workload
     seed — the exact bug class Util.Rng.derive exists to prevent. *)
  Random.float 1.0

let stamp () =
  (* Wall-clock read: any result derived from it is unreproducible. *)
  Sys.time ()
