(* ALLOC-HOT fixture: a function marked hot via [@@hnlpu.hot] that
   allocates on every iteration of its loop — tuples, closures, list
   cons/append, Printf, a boxed int64 and a partial application.  Every
   one of these was a real pattern PR 6 had to hand-remove from the
   sweep hot paths. *)

let add2 a b c = a + b + c

let hot_loop n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    (* tuple allocation per iteration *)
    let pair = (i, i * 2) in
    (* closure allocation per iteration *)
    let f = fun x -> x + fst pair in
    (* list cons + append per iteration *)
    let xs = [ i; i + 1 ] @ [ i + 2 ] in
    (* Printf formatting per iteration *)
    let s = Printf.sprintf "%d" (List.length xs) in
    (* boxed int64 arithmetic per iteration *)
    let big = Int64.add (Int64.of_int i) 1L in
    (* partial application allocates a closure *)
    let g = add2 i in
    acc := !acc + f i + String.length s + Int64.to_int big + g 1 2
  done;
  !acc
[@@hnlpu.hot]
