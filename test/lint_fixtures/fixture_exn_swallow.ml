(* EXN-SWALLOW fixture: blanket handlers that discard the exception —
   the worker-loop bug class PR 6 removed (a swallowed Out_of_memory in
   a pool worker silently corrupted the whole region). *)

let swallow_unit f =
  try f () with _ -> ()

let swallow_named f default =
  (* Binding the exception and then ignoring it swallows just as hard. *)
  try f () with e -> default

let swallow_in_match f =
  match f () with
  | v -> v
  | exception _ -> 0
