(* Deliberately clean module: pure, allocation-free-when-hot patterns
   the lint engine must stay silent on — the zero-findings control for
   test_lint and the self-test. *)

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let dot3 a0 a1 a2 b0 b1 b2 = (a0 *. b0) +. (a1 *. b1) +. (a2 *. b2)

let sum_to n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + i
  done;
  !acc

let handled_specifically f default =
  (* Matching a specific exception is deliberate handling, not a
     swallow. *)
  try f () with Not_found -> default

let rethrow_with_context f =
  try f ()
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    Printexc.raise_with_backtrace e bt
