(* Tests for the Hardwired-Neuron compiler (netlist / TCL / LVS / DRC) and
   the byte-level tokenizer. *)

open Hnlpu
open Hnlpu_litho

let small_gemv seed =
  Gemv.random (Rng.create seed) ~in_features:48 ~out_features:6 ~act_bits:8

(* --- Compiler: structure ------------------------------------------------ *)

let test_compile_wire_count () =
  let g = small_gemv 1 in
  let n = Hn_compiler.compile ~slack:4.0 g in
  Alcotest.(check int) "one wire per weight" (Gemv.total_macs g)
    (Hn_compiler.wire_count n)

let test_compile_overflow () =
  let open Hnlpu_fp4 in
  let g = Gemv.make ~weights:[| Array.make 32 (Fp4.of_float 1.0) |] ~act_bits:8 in
  Alcotest.(check bool) "overflow rejected" true
    (try
       ignore (Hn_compiler.compile ~slack:1.0 g);
       false
     with Invalid_argument _ -> true)

let test_compile_drc_clean () =
  let n = Hn_compiler.compile ~slack:4.0 (small_gemv 2) in
  Alcotest.(check int) "DRC clean" 0 (List.length (Hn_compiler.drc n))

let test_drc_detects_conflicts () =
  let n = Hn_compiler.compile ~slack:4.0 (small_gemv 3) in
  (* Sabotage: duplicate the first wire's (layer, track) onto the second. *)
  let broken =
    match n.Hn_compiler.wires with
    | w1 :: w2 :: rest ->
      { n with Hn_compiler.wires = w1 :: { w2 with Hn_compiler.layer = w1.Hn_compiler.layer;
                                                    track = w1.Hn_compiler.track } :: rest }
    | _ -> Alcotest.fail "expected wires"
  in
  Alcotest.(check bool) "track conflict detected" true
    (List.exists
       (function Hn_compiler.Track_conflict _ -> true | _ -> false)
       (Hn_compiler.drc broken))

let test_drc_detects_bad_layer () =
  let n = Hn_compiler.compile ~slack:4.0 (small_gemv 4) in
  let broken =
    match n.Hn_compiler.wires with
    | w :: rest -> { n with Hn_compiler.wires = { w with Hn_compiler.layer = "M3" } :: rest }
    | _ -> Alcotest.fail "expected wires"
  in
  Alcotest.(check bool) "embedding outside M8-M11 detected" true
    (List.exists
       (function Hn_compiler.Out_of_window _ -> true | _ -> false)
       (Hn_compiler.drc broken))

let test_drc_derived_bound () =
  (* The compiler assigns layer (neuron + input) mod 4, so a bank can never
     legitimately need more than out * ceil(in/4) tracks on one layer — the
     default DRC window.  48x6 -> 72. *)
  let n = Hn_compiler.compile ~slack:4.0 (small_gemv 11) in
  Alcotest.(check int) "48x6 window" 72 (Hn_compiler.max_tracks_per_layer n);
  Alcotest.(check int) "compiled netlist inside it" 0
    (List.length (Hn_compiler.drc n));
  (* A track at exactly the window edge is out; one below is in. *)
  let with_track track =
    match n.Hn_compiler.wires with
    | w :: rest ->
      { n with Hn_compiler.wires = { w with Hn_compiler.track = track } :: rest }
    | _ -> Alcotest.fail "expected wires"
  in
  Alcotest.(check bool) "track 72 rejected" true
    (List.exists
       (function Hn_compiler.Out_of_window _ -> true | _ -> false)
       (Hn_compiler.drc (with_track 72)));
  Alcotest.(check bool) "track 71 tolerated by the window rule" false
    (List.exists
       (function Hn_compiler.Out_of_window _ -> true | _ -> false)
       (Hn_compiler.drc (with_track 71)))

let test_drc_violations_carry_wires () =
  let n = Hn_compiler.compile ~slack:4.0 (small_gemv 12) in
  let broken =
    match n.Hn_compiler.wires with
    | w1 :: w2 :: rest ->
      { n with Hn_compiler.wires = w1 :: { w2 with Hn_compiler.layer = w1.Hn_compiler.layer;
                                                    track = w1.Hn_compiler.track } :: rest }
    | _ -> Alcotest.fail "expected wires"
  in
  match Hn_compiler.drc broken with
  | [ Hn_compiler.Track_conflict (layer, track, ws) ] ->
    Alcotest.(check int) "both offenders listed" 2 (List.length ws);
    List.iter
      (fun (w : Hn_compiler.wire) ->
        Alcotest.(check string) "on the conflict layer" layer w.Hn_compiler.layer;
        Alcotest.(check int) "on the conflict track" track w.Hn_compiler.track)
      ws
  | vs -> Alcotest.failf "expected one track conflict, got %d violations" (List.length vs)

(* --- Compiler: LVS -------------------------------------------------------- *)

let test_lvs_passes () =
  let g = small_gemv 5 in
  let n = Hn_compiler.compile ~slack:4.0 g in
  Alcotest.(check bool) "LVS clean" true (Hn_compiler.lvs n g)

let test_lvs_catches_wrong_weight () =
  let g = small_gemv 6 in
  let n = Hn_compiler.compile ~slack:4.0 g in
  (* Move one wire to a different region: the netlist now encodes a
     different weight — exactly what LVS exists to catch. *)
  let broken =
    match n.Hn_compiler.wires with
    | w :: rest ->
      { n with
        Hn_compiler.wires =
          { w with Hn_compiler.region = (w.Hn_compiler.region + 1) mod 16 } :: rest }
    | _ -> Alcotest.fail "expected wires"
  in
  Alcotest.(check bool) "LVS fails" false (Hn_compiler.lvs broken g)

let test_extract_weights_roundtrip () =
  let g = small_gemv 7 in
  let n = Hn_compiler.compile ~slack:4.0 g in
  let extracted = Hn_compiler.extract_weights n in
  Array.iteri
    (fun o row ->
      Array.iteri
        (fun i w ->
          Alcotest.(check bool) "same code" true (Fp4.equal w extracted.(o).(i)))
        row)
    g.Gemv.weights

(* --- Compiler: TCL round-trip ----------------------------------------------- *)

let test_tcl_roundtrip () =
  let g = small_gemv 8 in
  let n = Hn_compiler.compile ~slack:4.0 g in
  let n' = Hn_compiler.of_tcl (Hn_compiler.to_tcl n) in
  Alcotest.(check bool) "identical netlist" true (n = n');
  Alcotest.(check bool) "still LVS clean" true (Hn_compiler.lvs n' g)

let test_tcl_rejects_garbage () =
  Alcotest.(check bool) "bad header" true
    (try
       ignore (Hn_compiler.of_tcl "nonsense");
       false
     with Failure _ -> true)

(* of_tcl failure messages must carry the line number and the offending
   token, so a multi-million-line reticle script is debuggable. *)
let failure_of script =
  match Hn_compiler.of_tcl script with
  | exception Failure msg -> msg
  | _ -> Alcotest.fail "expected of_tcl to reject the script"

let test_tcl_truncated_statement () =
  let tcl = Hn_compiler.to_tcl (Hn_compiler.compile ~slack:4.0 (small_gemv 13)) in
  (* Cut the script mid-way through its final route statement. *)
  let cut =
    match String.rindex_opt (String.trim tcl) '-' with
    | Some i -> String.sub tcl 0 i
    | None -> Alcotest.fail "expected route statements"
  in
  let msg = failure_of cut in
  Alcotest.(check bool) "names the line and the gap" true
    (Thelp.contains msg "line" && Thelp.contains msg "truncated")

let test_tcl_duplicate_wire () =
  let tcl = Hn_compiler.to_tcl (Hn_compiler.compile ~slack:4.0 (small_gemv 14)) in
  let dup =
    match String.split_on_char '\n' (String.trim tcl) with
    | header :: (route :: _ as routes) ->
      String.concat "\n" ((header :: routes) @ [ route ])
    | _ -> Alcotest.fail "expected route statements"
  in
  let msg = failure_of dup in
  Alcotest.(check bool) "points at both lines" true
    (Thelp.contains msg "duplicate wire"
    && Thelp.contains msg "first at line 2")

let test_tcl_bad_layer_name () =
  let msg =
    failure_of
      "# hn-netlist in=4 out=1 cap=4\n\
       route -neuron 0 -input 0 -region 0 -port 0 -layer M3 -track 0"
  in
  Alcotest.(check bool) "names the layer window" true
    (Thelp.contains msg "line 2" && Thelp.contains msg "M8-M11")

let test_tcl_bad_integer_token () =
  let msg =
    failure_of
      "# hn-netlist in=4 out=1 cap=4\n\
       route -neuron zero -input 0 -region 0 -port 0 -layer M8 -track 0"
  in
  Alcotest.(check bool) "names token and line 2" true
    (Thelp.contains msg "line 2" && Thelp.contains msg "\"zero\"")

let prop_compile_lvs_always =
  QCheck.Test.make ~name:"compile then LVS always passes" ~count:40
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let g =
        Gemv.random rng
          ~in_features:(16 + Rng.int rng 48)
          ~out_features:(1 + Rng.int rng 6)
          ~act_bits:8
      in
      let n = Hn_compiler.compile ~slack:16.0 g in
      Hn_compiler.lvs n g && Hn_compiler.drc n = [])

let test_report_renders () =
  let n = Hn_compiler.compile ~slack:4.0 (small_gemv 9) in
  let s = Hn_compiler.report n in
  Alcotest.(check bool) "mentions layers" true
    (Thelp.contains s "M8" && Thelp.contains s "M11" && Thelp.contains s "wires")

(* The netlist for one chip of the real model is ~7.2B wires; compile a
   single full-width neuron bank to prove the path scales shape-wise. *)
let test_compile_full_width_neuron () =
  let g =
    Gemv.random (Rng.create 10) ~in_features:2880 ~out_features:2 ~act_bits:8
  in
  let n = Hn_compiler.compile g in
  Alcotest.(check int) "5760 wires" 5760 (Hn_compiler.wire_count n);
  Alcotest.(check bool) "LVS" true (Hn_compiler.lvs n g);
  Alcotest.(check int) "DRC" 0 (List.length (Hn_compiler.drc n))

(* --- Netlist diff ------------------------------------------------------------- *)

let test_diff_identity () =
  let g = small_gemv 20 in
  let n = Hn_compiler.compile ~slack:4.0 g in
  let d = Hn_compiler.diff n n in
  Alcotest.(check int) "no reroutes" 0 d.Hn_compiler.rerouted;
  Alcotest.(check (list string)) "no layers" [] d.Hn_compiler.layers_touched

let test_diff_counts_changes () =
  let open Hnlpu_fp4 in
  let base = Array.make 16 (Fp4.of_float 1.0) in
  let changed = Array.copy base in
  changed.(3) <- Fp4.of_float 2.0;
  changed.(7) <- Fp4.of_float (-1.0);
  let ga = Gemv.make ~weights:[| base |] ~act_bits:8 in
  let gb = Gemv.make ~weights:[| changed |] ~act_bits:8 in
  let na = Hn_compiler.compile ~slack:16.0 ga in
  let nb = Hn_compiler.compile ~slack:16.0 gb in
  let d = Hn_compiler.diff na nb in
  Alcotest.(check int) "two wires rerouted" 2 d.Hn_compiler.rerouted;
  Alcotest.(check bool) "fraction" true
    (Hnlpu_util.Approx.close ~rel:1e-9 d.Hn_compiler.rerouted_fraction (2.0 /. 16.0))

let test_diff_shape_mismatch () =
  let na = Hn_compiler.compile ~slack:8.0 (small_gemv 21) in
  let nb =
    Hn_compiler.compile ~slack:8.0
      (Gemv.random (Rng.create 22) ~in_features:24 ~out_features:6 ~act_bits:8)
  in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Hn_compiler.diff na nb);
       false
     with Invalid_argument _ -> true)

(* --- Tokenizer ------------------------------------------------------------------ *)

let test_tokenizer_roundtrip () =
  let s = "Hello, HNLPU!\n" in
  Alcotest.(check string) "roundtrip" s (Tokenizer.decode (Tokenizer.encode s))

let test_tokenizer_bos () =
  (match Tokenizer.encode "a" with
  | [ b; 97 ] -> Alcotest.(check int) "bos first" Tokenizer.bos b
  | _ -> Alcotest.fail "unexpected encoding");
  Alcotest.(check (list int)) "no bos" [ 97 ] (Tokenizer.encode ~add_bos:false "a")

let test_tokenizer_specials_dropped () =
  Alcotest.(check string) "specials invisible" "ab"
    (Tokenizer.decode [ Tokenizer.bos; 97; Tokenizer.pad; 98; Tokenizer.eos ])

let test_tokenizer_names () =
  Alcotest.(check string) "printable" "'A'" (Tokenizer.token_name 65);
  Alcotest.(check string) "control" "0x0A" (Tokenizer.token_name 10);
  Alcotest.(check string) "special" "<bos>" (Tokenizer.token_name Tokenizer.bos)

let test_tiny_byte_model_runs () =
  Config.validate Tokenizer.tiny_byte_config;
  let w = Weights.random (Rng.create 11) Tokenizer.tiny_byte_config in
  let t = Transformer.create w in
  let out =
    Transformer.generate (Rng.create 12) t
      ~prompt:(Tokenizer.encode "hi")
      ~max_new_tokens:8 (Sampler.Top_k (20, 1.0))
  in
  Alcotest.(check int) "8 tokens" 8 (List.length out);
  (* Decoding must never raise, whatever bytes come out. *)
  ignore (Tokenizer.decode out)

let prop_tokenizer_roundtrip =
  QCheck.Test.make ~name:"byte tokenizer roundtrips all strings" ~count:200
    QCheck.string
    (fun s -> Tokenizer.decode (Tokenizer.encode s) = s)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hnlpu_compiler"
    [
      ( "compile",
        [
          Alcotest.test_case "wire count" `Quick test_compile_wire_count;
          Alcotest.test_case "overflow" `Quick test_compile_overflow;
          Alcotest.test_case "drc clean" `Quick test_compile_drc_clean;
          Alcotest.test_case "drc track conflict" `Quick test_drc_detects_conflicts;
          Alcotest.test_case "drc bad layer" `Quick test_drc_detects_bad_layer;
          Alcotest.test_case "drc derived bound" `Quick test_drc_derived_bound;
          Alcotest.test_case "drc violations carry wires" `Quick
            test_drc_violations_carry_wires;
          Alcotest.test_case "full-width neuron" `Quick test_compile_full_width_neuron;
        ] );
      ( "lvs",
        [
          Alcotest.test_case "passes" `Quick test_lvs_passes;
          Alcotest.test_case "catches wrong weight" `Quick test_lvs_catches_wrong_weight;
          Alcotest.test_case "extract roundtrip" `Quick test_extract_weights_roundtrip;
        ] );
      ( "tcl",
        [
          Alcotest.test_case "roundtrip" `Quick test_tcl_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_tcl_rejects_garbage;
          Alcotest.test_case "truncated statement" `Quick test_tcl_truncated_statement;
          Alcotest.test_case "duplicate wire" `Quick test_tcl_duplicate_wire;
          Alcotest.test_case "bad layer name" `Quick test_tcl_bad_layer_name;
          Alcotest.test_case "bad integer token" `Quick test_tcl_bad_integer_token;
          Alcotest.test_case "report" `Quick test_report_renders;
        ] );
      qsuite "compiler properties" [ prop_compile_lvs_always ];
      ( "diff",
        [
          Alcotest.test_case "identity" `Quick test_diff_identity;
          Alcotest.test_case "counts changes" `Quick test_diff_counts_changes;
          Alcotest.test_case "shape mismatch" `Quick test_diff_shape_mismatch;
        ] );
      ( "tokenizer",
        [
          Alcotest.test_case "roundtrip" `Quick test_tokenizer_roundtrip;
          Alcotest.test_case "bos" `Quick test_tokenizer_bos;
          Alcotest.test_case "specials dropped" `Quick test_tokenizer_specials_dropped;
          Alcotest.test_case "token names" `Quick test_tokenizer_names;
          Alcotest.test_case "tiny-byte model" `Quick test_tiny_byte_model_runs;
        ] );
      qsuite "tokenizer properties" [ prop_tokenizer_roundtrip ];
    ]
